#include "ccg/policy/enforcement.hpp"

#include "ccg/common/expect.hpp"

namespace ccg {

AllowRule rule_for_record(const SegmentMap& segments,
                          const ConnectionSummary& record) {
  const FlowEndpoints ep = classify_endpoints(record);
  auto seg = [&](IpAddr ip) {
    const std::uint32_t s = segments.segment_of(ip);
    return s == kUnsegmented ? kExternalSegment : s;
  };
  return AllowRule{.from_segment = seg(ep.client_ip),
                   .to_segment = seg(ep.server_ip),
                   .server_port = ep.server_port};
}

bool VmRuleTable::allows(bool inbound, IpAddr peer_ip, std::uint32_t peer_tag,
                         std::uint16_t server_port) const {
  for (const DataPathRule& rule : rules_) {
    if (rule.inbound != inbound || rule.server_port != server_port) continue;
    switch (rule.peer) {
      case DataPathRule::PeerMatch::kIp:
        if (rule.peer_ip == peer_ip) return true;
        break;
      case DataPathRule::PeerMatch::kCidr:
        if (rule.peer_block.contains(peer_ip)) return true;
        break;
      case DataPathRule::PeerMatch::kTag:
        if (peer_tag != kUnsegmented && rule.peer_tag == peer_tag) return true;
        break;
      case DataPathRule::PeerMatch::kExternal:
        if (peer_tag == kUnsegmented) return true;
        break;
    }
  }
  return false;
}

EnforcementPlane::EnforcementPlane(const SegmentMap& segments,
                                   const ReachabilityPolicy& policy,
                                   RuleCompilerKind kind)
    : segments_(&segments), kind_(kind) {
  const std::size_t seg_count = segments.segment_count();
  const auto members = segments.members();

  // Group allow rules by client / server segment.
  std::vector<std::vector<const AllowRule*>> outbound_for(seg_count),
      inbound_for(seg_count);
  for (const AllowRule& rule : policy.rules()) {
    if (rule.from_segment < seg_count) outbound_for[rule.from_segment].push_back(&rule);
    if (rule.to_segment < seg_count) inbound_for[rule.to_segment].push_back(&rule);
  }

  // Each segment's table is identical across its members: build once.
  for (std::uint32_t s = 0; s < seg_count; ++s) {
    VmRuleTable table;
    auto add_peer_rules = [&](const AllowRule& rule, bool inbound,
                              std::uint32_t peer_segment) {
      DataPathRule base{};
      base.inbound = inbound;
      base.server_port = rule.server_port;
      if (peer_segment >= seg_count) {
        base.peer = DataPathRule::PeerMatch::kExternal;
        table.add(base);
      } else if (kind_ == RuleCompilerKind::kTagBased) {
        base.peer = DataPathRule::PeerMatch::kTag;
        base.peer_tag = peer_segment;
        table.add(base);
      } else if (kind_ == RuleCompilerKind::kCidrAggregated) {
        base.peer = DataPathRule::PeerMatch::kCidr;
        for (const IpPrefix& block : aggregate_cidrs(members[peer_segment])) {
          base.peer_block = block;
          table.add(base);
        }
      } else {
        base.peer = DataPathRule::PeerMatch::kIp;
        for (const IpAddr peer : members[peer_segment]) {
          base.peer_ip = peer;
          table.add(base);
        }
      }
    };
    for (const AllowRule* rule : outbound_for[s]) {
      add_peer_rules(*rule, /*inbound=*/false, rule->to_segment);
    }
    for (const AllowRule* rule : inbound_for[s]) {
      add_peer_rules(*rule, /*inbound=*/true, rule->from_segment);
    }
    for (const IpAddr vm : members[s]) {
      tables_.emplace(vm, table);
    }
  }
}

EnforcementPlane::Verdict EnforcementPlane::check(
    const ConnectionSummary& record) const {
  auto it = tables_.find(record.flow.local_ip);
  if (it == tables_.end()) return Verdict::kNoTable;

  const FlowEndpoints ep = classify_endpoints(record);
  const bool local_is_client = record.flow.local_ip == ep.client_ip;
  const IpAddr peer = local_is_client ? ep.server_ip : ep.client_ip;
  const std::uint32_t peer_tag = segments_->segment_of(peer);
  // At the local NIC: outbound check when this VM initiated, inbound when
  // it serves. The rule's port is always the server-side port.
  const bool inbound = !local_is_client;
  return it->second.allows(inbound, peer, peer_tag, ep.server_port)
             ? Verdict::kAllow
             : Verdict::kDeny;
}

const VmRuleTable* EnforcementPlane::table(IpAddr vm) const {
  auto it = tables_.find(vm);
  return it == tables_.end() ? nullptr : &it->second;
}

std::uint64_t EnforcementPlane::total_rules() const {
  std::uint64_t total = 0;
  for (const auto& [vm, table] : tables_) total += table.size();
  return total;
}

}  // namespace ccg

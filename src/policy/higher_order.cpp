#include "ccg/policy/higher_order.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "ccg/common/expect.hpp"

namespace ccg {

std::vector<ClassifiedViolation> apply_similarity_policy(
    const std::vector<Violation>& violations, const SegmentMap& segments,
    SimilarityPolicyOptions options) {
  CCG_EXPECT(options.segment_fraction > 0.0 && options.segment_fraction <= 1.0);

  // Group by behaviour: (client segment, server segment, port) -> distinct
  // client IPs exhibiting it.
  struct Behaviour {
    std::unordered_set<std::uint32_t> clients;  // distinct client IP bits
  };
  std::unordered_map<std::uint64_t, Behaviour> behaviours;
  auto behaviour_key = [](const Violation& v) {
    return (std::uint64_t{v.client_segment} << 40) ^
           (std::uint64_t{v.server_segment} << 16) ^ v.server_port;
  };
  for (const Violation& v : violations) {
    behaviours[behaviour_key(v)].clients.insert(v.client_ip.bits());
  }

  std::vector<ClassifiedViolation> out;
  out.reserve(violations.size());
  for (const Violation& v : violations) {
    ClassifiedViolation cv{.violation = v};
    if (v.client_segment != kUnsegmented && v.client_segment != kExternalSegment) {
      const std::size_t segment_size = segments.segment_size(v.client_segment);
      const std::size_t exhibiting = behaviours[behaviour_key(v)].clients.size();
      if (segment_size > 0) {
        cv.segment_coverage =
            static_cast<double>(exhibiting) / static_cast<double>(segment_size);
        cv.suppressed = exhibiting >= options.min_members &&
                        cv.segment_coverage >= options.segment_fraction;
      }
    }
    out.push_back(cv);
  }
  return out;
}

void SegmentVolumeMatrix::observe(const ConnectionSummary& record) {
  const FlowEndpoints ep = classify_endpoints(record);
  auto seg = [&](IpAddr ip) {
    const std::uint32_t s = segments_->segment_of(ip);
    return s == kUnsegmented ? kExternalSegment : s;
  };
  // Count each conversation once. Both endpoints of an intra-subscription
  // flow report it; prefer the client-side record and accept the
  // server-side one only when the client is outside the segmented estate
  // (then the server's NIC holds the only copy).
  const std::uint32_t from = seg(ep.client_ip);
  const std::uint32_t to = seg(ep.server_ip);
  const bool local_is_client = record.flow.local_ip == ep.client_ip;
  if (!local_is_client && from != kExternalSegment) return;
  volume_[key(from, to)] += record.counters.total_bytes();
}

void SegmentVolumeMatrix::observe_batch(const std::vector<ConnectionSummary>& batch) {
  for (const auto& record : batch) observe(record);
}

std::uint64_t SegmentVolumeMatrix::volume(std::uint32_t from, std::uint32_t to) const {
  auto it = volume_.find(key(from, to));
  return it == volume_.end() ? 0 : it->second;
}

std::vector<VolumeAlert> apply_proportionality_policy(
    const SegmentVolumeMatrix& baseline, const SegmentVolumeMatrix& current,
    ProportionalityOptions options) {
  CCG_EXPECT(options.growth_trigger >= 1.0);
  CCG_EXPECT(options.disproportion_factor >= 1.0);

  // Growth per client segment over edges with a usable baseline, plus the
  // total inbound volume per server segment (for the flash-crowd chain).
  std::unordered_map<std::uint32_t, std::vector<double>> growths_by_segment;
  std::unordered_map<std::uint32_t, std::uint64_t> inbound_base, inbound_cur;
  struct Candidate {
    std::uint32_t from, to;
    std::uint64_t base, cur;
    double growth;
  };
  std::vector<Candidate> candidates;

  for (const auto& [key, base_bytes] : baseline.volumes()) {
    const auto from = static_cast<std::uint32_t>(key >> 32);
    const auto to = static_cast<std::uint32_t>(key & 0xFFFFFFFFu);
    const std::uint64_t cur_bytes = current.volume(from, to);
    inbound_base[to] += base_bytes;
    inbound_cur[to] += cur_bytes;
    if (base_bytes < options.min_baseline_bytes) continue;
    const double growth =
        static_cast<double>(cur_bytes) / static_cast<double>(base_bytes);
    growths_by_segment[from].push_back(growth);
    if (growth >= options.growth_trigger) {
      candidates.push_back({from, to, base_bytes, cur_bytes, growth});
    }
  }

  auto median = [](std::vector<double> v) {
    if (v.empty()) return 1.0;
    // Lower-middle for even sizes: with few edges, the conservative pick
    // keeps a single surging edge from becoming its own excuse.
    const auto mid = static_cast<std::ptrdiff_t>((v.size() - 1) / 2);
    std::nth_element(v.begin(), v.begin() + mid, v.end());
    return v[static_cast<std::size_t>(mid)];
  };
  std::unordered_map<std::uint32_t, double> median_by_segment;
  for (const auto& [seg, growths] : growths_by_segment) {
    median_by_segment[seg] = median(growths);
  }

  std::vector<VolumeAlert> alerts;
  alerts.reserve(candidates.size());
  for (const Candidate& c : candidates) {
    const double med = std::max(1.0, median_by_segment[c.from]);
    // Flash-crowd chain: if the client segment itself received
    // proportionally more traffic, its outbound surge is explained.
    double in_growth = 1.0;
    auto bit = inbound_base.find(c.from);
    if (bit != inbound_base.end() && bit->second >= options.min_baseline_bytes) {
      in_growth = static_cast<double>(inbound_cur[c.from]) /
                  static_cast<double>(bit->second);
    }
    const double explanation = std::max({1.0, med, in_growth});
    VolumeAlert alert{.client_segment = c.from,
                      .server_segment = c.to,
                      .baseline_bytes = c.base,
                      .current_bytes = c.cur,
                      .growth = c.growth,
                      .segment_median_growth = med,
                      .inbound_growth = in_growth,
                      .flagged = c.growth > options.disproportion_factor * explanation};
    alerts.push_back(alert);
  }
  return alerts;
}

std::string VolumeAlert::to_string() const {
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "seg %u -> seg %u: %.1fx growth (outbound median %.1fx, "
                "inbound %.1fx) %s",
                client_segment, server_segment, growth, segment_median_growth,
                inbound_growth, flagged ? "ALERT" : "explained");
  return buf;
}

}  // namespace ccg

#include "ccg/policy/reachability.hpp"

#include <algorithm>
#include <utility>

#include "ccg/common/expect.hpp"

namespace ccg {

namespace {

constexpr std::uint16_t kEphemeralFloor = 32768;

std::uint32_t segment_or_external(const SegmentMap& segments, IpAddr ip) {
  const std::uint32_t seg = segments.segment_of(ip);
  return seg == kUnsegmented ? kExternalSegment : seg;
}

AllowRule rule_for(const SegmentMap& segments, const FlowEndpoints& ep) {
  return AllowRule{.from_segment = segment_or_external(segments, ep.client_ip),
                   .to_segment = segment_or_external(segments, ep.server_ip),
                   .server_port = ep.server_port};
}

}  // namespace

FlowEndpoints classify_endpoints(const ConnectionSummary& record) {
  switch (record.initiator) {
    case Initiator::kLocal:
      return {.client_ip = record.flow.local_ip,
              .server_ip = record.flow.remote_ip,
              .server_port = record.flow.remote_port};
    case Initiator::kRemote:
      return {.client_ip = record.flow.remote_ip,
              .server_ip = record.flow.local_ip,
              .server_port = record.flow.local_port};
    case Initiator::kUnknown:
      break;
  }
  return classify_endpoints(record.flow);
}

FlowEndpoints classify_endpoints(const FlowKey& flow) {
  const bool local_is_server =
      flow.local_port < kEphemeralFloor &&
      (flow.remote_port >= kEphemeralFloor || flow.local_port <= flow.remote_port);
  if (local_is_server) {
    return {.client_ip = flow.remote_ip,
            .server_ip = flow.local_ip,
            .server_port = flow.local_port};
  }
  return {.client_ip = flow.local_ip,
          .server_ip = flow.remote_ip,
          .server_port = flow.remote_port};
}

std::vector<std::vector<std::uint32_t>> ReachabilityPolicy::reachable_segments(
    std::size_t segment_count) const {
  std::vector<std::vector<std::uint32_t>> out(segment_count);
  for (const AllowRule& r : rules_) {
    if (r.from_segment >= segment_count) continue;  // external client
    if (r.to_segment >= segment_count) continue;    // external server
    auto& list = out[r.from_segment];
    if (std::find(list.begin(), list.end(), r.to_segment) == list.end()) {
      list.push_back(r.to_segment);
    }
  }
  return out;
}

void PolicyMiner::observe(const ConnectionSummary& record) {
  ++records_;
  const AllowRule rule = rule_for(*segments_, classify_endpoints(record));
  if (seen_this_window_.insert(rule).second) ++support_[rule];
}

void PolicyMiner::observe_batch(const std::vector<ConnectionSummary>& batch) {
  for (const auto& record : batch) observe(record);
}

void PolicyMiner::end_window() {
  ++windows_;
  seen_this_window_.clear();
}

ReachabilityPolicy PolicyMiner::build(std::size_t min_support) const {
  CCG_EXPECT(min_support >= 1);
  ReachabilityPolicy policy;
  for (const auto& [rule, support] : support_) {
    if (support >= min_support) policy.allow(rule);
  }
  return policy;
}

PolicyChecker::PolicyChecker(const SegmentMap& segments, ReachabilityPolicy policy)
    : segments_(&segments), policy_(std::move(policy)) {}

std::optional<Violation> PolicyChecker::check(const ConnectionSummary& record) {
  ++records_;
  const FlowEndpoints ep = classify_endpoints(record);
  const AllowRule rule = rule_for(*segments_, ep);
  if (policy_.allows(rule)) return std::nullopt;

  // One report per (client, server, port) per window.
  const std::uint64_t dedup_key =
      (std::uint64_t{ep.client_ip.bits()} << 32) ^
      (std::uint64_t{ep.server_ip.bits()} << 8) ^ ep.server_port;
  if (!seen_.insert(dedup_key).second) return std::nullopt;

  Violation v{.time = record.time,
              .client_ip = ep.client_ip,
              .server_ip = ep.server_ip,
              .server_port = ep.server_port,
              .client_segment = rule.from_segment,
              .server_segment = rule.to_segment};
  violations_.push_back(v);
  return v;
}

void PolicyChecker::check_batch(const std::vector<ConnectionSummary>& batch) {
  for (const auto& record : batch) check(record);
}

std::vector<Violation> PolicyChecker::take_violations() {
  return std::exchange(violations_, {});
}

void PolicyChecker::reset_window() { seen_.clear(); }

std::string Violation::to_string() const {
  return time.to_string() + " " + client_ip.to_string() + " (seg " +
         (client_segment == kExternalSegment ? std::string("ext")
                                             : std::to_string(client_segment)) +
         ") -> " + server_ip.to_string() + ":" + std::to_string(server_port) +
         " (seg " +
         (server_segment == kExternalSegment ? std::string("ext")
                                             : std::to_string(server_segment)) +
         ")";
}

}  // namespace ccg

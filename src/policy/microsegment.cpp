#include "ccg/policy/microsegment.hpp"

#include <algorithm>

#include "ccg/common/expect.hpp"

namespace ccg {

SegmentMap SegmentMap::from_segmentation(const CommGraph& graph,
                                         const Segmentation& segmentation,
                                         bool monitored_only) {
  CCG_EXPECT(segmentation.labels.size() == graph.node_count());
  SegmentMap map;
  // Renumber densely over the segments that actually gain members.
  std::unordered_map<std::uint32_t, std::uint32_t> renumber;
  for (NodeId i = 0; i < graph.node_count(); ++i) {
    const NodeKey& key = graph.key(i);
    if (key.is_collapsed()) continue;
    if (key.port != NodeKey::kIpLevel) continue;  // segment at IP granularity
    if (monitored_only && !graph.node_stats(i).monitored) continue;
    auto [it, inserted] = renumber.try_emplace(
        segmentation.labels[i], static_cast<std::uint32_t>(renumber.size()));
    map.assignment_.emplace(key.ip, it->second);
  }
  map.segment_count_ = renumber.size();
  return map;
}

SegmentMap SegmentMap::from_roles(
    const std::unordered_map<IpAddr, std::string>& roles) {
  SegmentMap map;
  std::unordered_map<std::string, std::uint32_t> role_ids;
  for (const auto& [ip, role] : roles) {
    auto [it, inserted] =
        role_ids.try_emplace(role, static_cast<std::uint32_t>(role_ids.size()));
    map.assignment_.emplace(ip, it->second);
  }
  map.segment_count_ = role_ids.size();
  return map;
}

std::uint32_t SegmentMap::segment_of(IpAddr ip) const {
  auto it = assignment_.find(ip);
  return it == assignment_.end() ? kUnsegmented : it->second;
}

void SegmentMap::assign(IpAddr ip, std::uint32_t segment) {
  assignment_[ip] = segment;
  segment_count_ = std::max<std::size_t>(segment_count_, segment + 1);
}

std::vector<std::vector<IpAddr>> SegmentMap::members() const {
  std::vector<std::vector<IpAddr>> out(segment_count_);
  for (const auto& [ip, seg] : assignment_) {
    out[seg].push_back(ip);
  }
  return out;
}

std::size_t SegmentMap::segment_size(std::uint32_t segment) const {
  std::size_t count = 0;
  for (const auto& [ip, seg] : assignment_) {
    if (seg == segment) ++count;
  }
  return count;
}

}  // namespace ccg

#include "ccg/policy/rules.hpp"

#include <algorithm>

#include "ccg/common/expect.hpp"

namespace ccg {

std::string to_string(RuleCompilerKind kind) {
  switch (kind) {
    case RuleCompilerKind::kIpUnrolled: return "ip-unrolled";
    case RuleCompilerKind::kCidrAggregated: return "cidr-aggregated";
    case RuleCompilerKind::kTagBased: return "tag-based";
  }
  return "unknown";
}

CompiledRuleSet compile_rules(const SegmentMap& segments,
                              const ReachabilityPolicy& policy,
                              RuleCompilerKind kind,
                              std::size_t per_vm_budget) {
  CompiledRuleSet out;
  out.kind = kind;
  out.budget = per_vm_budget;

  const auto members = segments.members();
  const std::size_t seg_count = segments.segment_count();

  // CIDR compiler: one rule per aggregated block of the peer segment.
  std::vector<std::size_t> cidr_blocks(seg_count, 0);
  if (kind == RuleCompilerKind::kCidrAggregated) {
    for (std::uint32_t s = 0; s < seg_count; ++s) {
      cidr_blocks[s] = aggregate_cidrs(members[s]).size();
    }
  }

  // Group rules by client segment and by server segment for O(rules) work.
  // outbound_for[s]: allows with from_segment == s (target size or 1 if ext)
  // inbound_for[t]:  allows with to_segment == t
  std::vector<std::vector<const AllowRule*>> outbound_for(seg_count),
      inbound_for(seg_count);
  std::size_t external_out = 0;  // rules with external destination, per seg? no:
  (void)external_out;
  std::vector<std::size_t> ext_out_count(seg_count, 0), ext_in_count(seg_count, 0);
  for (const AllowRule& r : policy.rules()) {
    const bool from_internal = r.from_segment < seg_count;
    const bool to_internal = r.to_segment < seg_count;
    if (from_internal && to_internal) {
      outbound_for[r.from_segment].push_back(&r);
      inbound_for[r.to_segment].push_back(&r);
    } else if (from_internal) {
      ++ext_out_count[r.from_segment];  // to external: one CIDR rule
    } else if (to_internal) {
      ++ext_in_count[r.to_segment];  // from external: one CIDR rule
    }
  }

  // Per-VM counts depend only on the VM's segment; compute once per segment.
  auto peer_rule_count = [&](std::uint32_t peer_segment) -> std::size_t {
    switch (kind) {
      case RuleCompilerKind::kTagBased: return 1;
      case RuleCompilerKind::kCidrAggregated: return cidr_blocks[peer_segment];
      case RuleCompilerKind::kIpUnrolled: return members[peer_segment].size();
    }
    return members[peer_segment].size();
  };
  std::vector<std::size_t> seg_outbound(seg_count, 0), seg_inbound(seg_count, 0);
  for (std::uint32_t s = 0; s < seg_count; ++s) {
    std::size_t outbound = ext_out_count[s];
    for (const AllowRule* r : outbound_for[s]) {
      outbound += peer_rule_count(r->to_segment);
    }
    std::size_t inbound = ext_in_count[s];
    for (const AllowRule* r : inbound_for[s]) {
      inbound += peer_rule_count(r->from_segment);
    }
    seg_outbound[s] = outbound;
    seg_inbound[s] = inbound;
  }

  for (std::uint32_t s = 0; s < seg_count; ++s) {
    for (const IpAddr vm : members[s]) {
      VmRuleLoad load{.vm = vm,
                      .inbound_rules = seg_inbound[s],
                      .outbound_rules = seg_outbound[s]};
      out.total_rules += load.total();
      out.max_per_vm = std::max(out.max_per_vm, load.total());
      if (load.total() > per_vm_budget) ++out.vms_over_budget;
      out.per_vm.push_back(load);
    }
  }
  out.mean_per_vm = out.per_vm.empty()
                        ? 0.0
                        : static_cast<double>(out.total_rules) /
                              static_cast<double>(out.per_vm.size());
  return out;
}

ChurnCost churn_cost_of_replacement(const SegmentMap& segments,
                                    const ReachabilityPolicy& policy,
                                    std::uint32_t churned_segment,
                                    RuleCompilerKind kind) {
  ChurnCost cost;
  const std::size_t seg_count = segments.segment_count();
  CCG_EXPECT(churned_segment < seg_count);
  const auto members = segments.members();

  if (kind == RuleCompilerKind::kTagBased) {
    // Only the replacement VM's own table is programmed; peers match on the
    // tag, which is unchanged.
    cost.vm_tables_touched = 1;
    std::size_t own_rules = 0;
    for (const AllowRule& r : policy.rules()) {
      if (r.from_segment == churned_segment || r.to_segment == churned_segment) {
        ++own_rules;
      }
    }
    cost.rules_rewritten = own_rules;
    return cost;
  }

  // IP-unrolled: every VM in a segment that may talk to (or be reached by)
  // the churned segment holds the old IP in a rule and needs an update —
  // plus the new VM's full table.
  std::vector<bool> touched(seg_count, false);
  touched[churned_segment] = true;
  for (const AllowRule& r : policy.rules()) {
    if (r.from_segment < seg_count && r.to_segment == churned_segment) {
      touched[r.from_segment] = true;
    }
    if (r.to_segment < seg_count && r.from_segment == churned_segment) {
      touched[r.to_segment] = true;
    }
  }
  for (std::uint32_t s = 0; s < seg_count; ++s) {
    if (!touched[s]) continue;
    cost.vm_tables_touched += members[s].size();
    // One rule rewritten per peer VM (the entry naming the replaced IP);
    // the new VM re-installs its whole compiled table.
    cost.rules_rewritten += members[s].size();
  }
  const CompiledRuleSet own = compile_rules(segments, policy, kind);
  for (const auto& load : own.per_vm) {
    if (segments.segment_of(load.vm) == churned_segment) {
      cost.rules_rewritten += load.total();
      break;  // all members of a segment share the same table size
    }
  }
  return cost;
}

std::string CompiledRuleSet::summary() const {
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "%s: total=%llu mean/VM=%.1f max/VM=%zu over-budget(%zu)=%zu VMs",
                to_string(kind).c_str(),
                static_cast<unsigned long long>(total_rules), mean_per_vm,
                max_per_vm, budget, vms_over_budget);
  return buf;
}

}  // namespace ccg

#include "ccg/policy/blast_radius.hpp"

#include <algorithm>

#include "ccg/common/expect.hpp"

namespace ccg {

std::vector<std::size_t> transitive_reach_by_segment(
    const SegmentMap& segments, const ReachabilityPolicy& policy) {
  const std::size_t k = segments.segment_count();
  const auto adjacency = policy.reachable_segments(k);
  const auto members = segments.members();

  std::vector<std::size_t> reach(k, 0);
  std::vector<bool> visited(k);
  std::vector<std::uint32_t> stack;
  for (std::uint32_t start = 0; start < k; ++start) {
    std::fill(visited.begin(), visited.end(), false);
    visited[start] = true;
    stack.assign(1, start);
    std::size_t resources = 0;
    while (!stack.empty()) {
      const std::uint32_t s = stack.back();
      stack.pop_back();
      resources += members[s].size();
      for (const std::uint32_t t : adjacency[s]) {
        if (!visited[t]) {
          visited[t] = true;
          stack.push_back(t);
        }
      }
    }
    // Exclude the breached resource itself.
    reach[start] = resources > 0 ? resources - 1 : 0;
  }
  return reach;
}

BlastRadiusReport blast_radius(const SegmentMap& segments,
                               const ReachabilityPolicy& policy) {
  BlastRadiusReport report;
  const std::size_t k = segments.segment_count();
  const auto members = segments.members();
  const auto adjacency = policy.reachable_segments(k);
  const auto transitive = transitive_reach_by_segment(segments, policy);

  std::size_t total_resources = 0;
  for (const auto& m : members) total_resources += m.size();
  report.resources = total_resources;
  report.flat_radius = total_resources > 0 ? total_resources - 1 : 0;
  if (total_resources == 0) return report;

  double direct_sum = 0.0, transitive_sum = 0.0;
  for (std::uint32_t s = 0; s < k; ++s) {
    // Direct: own segment peers + members of directly allowed segments.
    std::size_t direct = members[s].empty() ? 0 : members[s].size() - 1;
    for (const std::uint32_t t : adjacency[s]) {
      if (t != s) direct += members[t].size();
    }
    for (std::size_t i = 0; i < members[s].size(); ++i) {
      direct_sum += static_cast<double>(direct);
      transitive_sum += static_cast<double>(transitive[s]);
      report.max_direct = std::max(report.max_direct, direct);
      report.max_transitive = std::max(report.max_transitive, transitive[s]);
    }
  }
  report.mean_direct = direct_sum / static_cast<double>(total_resources);
  report.mean_transitive = transitive_sum / static_cast<double>(total_resources);
  report.reduction_factor =
      report.mean_transitive <= 0.0
          ? static_cast<double>(report.flat_radius)
          : static_cast<double>(report.flat_radius) / report.mean_transitive;
  return report;
}

std::string BlastRadiusReport::summary() const {
  char buf[220];
  std::snprintf(buf, sizeof(buf),
                "n=%zu flat=%zu direct(mean=%.1f,max=%zu) "
                "transitive(mean=%.1f,max=%zu) reduction=%.1fx",
                resources, flat_radius, mean_direct, max_direct,
                mean_transitive, max_transitive, reduction_factor);
  return buf;
}

}  // namespace ccg

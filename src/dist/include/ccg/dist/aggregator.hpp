// The aggregator role of the distributed collector (docs/DISTRIBUTED.md).
//
// Pulls per-window partial graphs from N shard connections and performs a
// barrier-per-window merge: it blocks until every live shard's next window
// is known, takes the minimum window begin, merges that window's frames in
// ascending shard order, finalizes through the shared canonicalize-and-
// collapse path, and hands the graph to a sink — which makes a distributed
// run byte-identical to the single-process one. Shards ship windows in
// increasing order, so a shard whose head is past W (or which sent
// end-of-stream) provably has nothing for W; a shard with no records in W
// simply skips it. A shard that times out or sends garbage is a fail-fast:
// the aggregator logs, dumps a flight record, and aborts the run.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "ccg/dist/wire.hpp"
#include "ccg/graph/builder.hpp"
#include "ccg/net/frame.hpp"
#include "ccg/obs/metrics.hpp"

namespace ccg::dist {

struct AggregatorOptions {
  /// The full job config (facet / window / collapse); shards must announce
  /// an equal config in their handshake.
  GraphBuildConfig graph;
  /// Per-recv timeout; -1 uses CCG_NET_TIMEOUT_MS. A shard that stays
  /// silent longer than this fails the run.
  int recv_timeout_ms = -1;
  /// Where the shard-failure flight record lands ("" = current directory).
  std::string flight_dir;
};

class Aggregator {
 public:
  /// Receives each finalized window's graph, in window order.
  using WindowSink = std::function<void(const CommGraph&)>;

  struct Result {
    std::uint64_t windows = 0;  // merged windows delivered to the sink
    std::uint64_t records = 0;  // sum of shard end-of-stream record counts
  };

  /// `conns` are accepted connections in arbitrary arrival order (forked
  /// workers race to connect); each one's kHello announces which shard it
  /// is. `conns.size()` fixes the expected shard count.
  Aggregator(AggregatorOptions options, std::vector<net::FrameConn> conns);

  /// Reads every connection's kHello, validates version + config + shard
  /// identity (each shard id 0..N-1 exactly once), slots the connection,
  /// acks. On any mismatch: logs, closes that connection (the shard sees
  /// the missing ack as a refusal) and returns false.
  bool handshake();

  /// Runs the barrier-per-window merge loop to completion. nullopt on
  /// shard failure (timeout, torn stream, decode failure, trace-id
  /// mismatch) — after logging and dumping a flight record.
  std::optional<Result> run(const WindowSink& sink);

 private:
  struct ShardState {
    net::FrameConn conn;
    std::optional<WindowFrame> head;  // next unmerged window, if known
    bool done = false;                // kEndOfStream received
    std::uint64_t records = 0;        // from kEndOfStream
    std::uint64_t merged = 0;         // windows merged from this shard
    obs::Counter* windows = nullptr;  // ccg.dist.agg.shard.<id>.windows
    obs::Counter* bytes = nullptr;    // ccg.dist.agg.shard.<id>.bytes
  };

  /// Blocks until shard s has a head window or is done. False = failure.
  bool advance(std::size_t s);
  void fail(std::size_t shard, const char* reason, std::int64_t window_begin);

  AggregatorOptions options_;
  std::vector<net::FrameConn> incoming_;  // consumed by handshake()
  std::vector<ShardState> shards_;

  obs::Counter* m_windows_merged_ = nullptr;  // ccg.dist.agg.windows_merged
  obs::Counter* m_frames_ = nullptr;          // ccg.dist.agg.frames_received
  obs::Counter* m_telemetry_ = nullptr;       // ccg.dist.agg.telemetry_frames
  obs::Gauge* m_pending_hwm_ = nullptr;  // ccg.dist.agg.queue_depth_hwm
  obs::Histogram* m_merge_wait_ = nullptr;  // ccg.dist.agg.merge_wait.seconds
  obs::Histogram* m_merge_ = nullptr;  // ccg.dist.agg.window_merge.seconds
};

}  // namespace ccg::dist

// The shard-worker role of the distributed collector (docs/DISTRIBUTED.md).
//
// A ShardWorker is a TelemetrySink that keeps only its own partition of
// the record stream (shard_of_record — the same function the in-process
// pipeline uses), builds per-window *partial* graphs (collapse disabled:
// traffic shares are meaningless on a partition), and ships each closed
// window to the aggregator as a canonical keyframe tagged with shard id,
// window begin and the deterministic window trace id.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "ccg/dist/wire.hpp"
#include "ccg/graph/builder.hpp"
#include "ccg/net/frame.hpp"
#include "ccg/obs/metrics.hpp"
#include "ccg/telemetry/collector.hpp"

namespace ccg::dist {

struct ShardWorkerOptions {
  std::uint32_t shard_id = 0;
  std::uint32_t shard_count = 1;
  /// The *full* job config (including collapse): announced in the
  /// handshake so aggregator and shards provably agree; the local builder
  /// runs with collapse disabled regardless.
  GraphBuildConfig graph;
};

class ShardWorker : public TelemetrySink {
 public:
  ShardWorker(ShardWorkerOptions options, std::unordered_set<IpAddr> monitored,
              net::FrameConn conn);

  /// Sends kHello and waits for kHelloAck. False (with a structured log
  /// record) when the aggregator refuses or the transport fails.
  bool handshake();

  /// TelemetrySink hook: ingests this shard's records, ships any windows
  /// the minute advance closed. Transport errors surface in finish().
  void on_batch(MinuteBucket time,
                const std::vector<ConnectionSummary>& batch) override;

  /// Closes the final window, ships it, sends kEndOfStream. False if any
  /// ship failed (the aggregator is gone or refused).
  bool finish();

  std::uint64_t records() const { return records_; }
  std::uint64_t windows_shipped() const { return windows_; }
  std::uint64_t telemetry_shipped() const { return telemetry_seq_; }

 private:
  bool ship_closed_windows();
  /// Ships one out-of-band kTelemetry frame: the metrics delta since the
  /// last shipment plus any new log records / trace spans. Best-effort —
  /// a failed ship is logged but never fails the worker (telemetry must
  /// not affect the data-plane contract).
  void ship_telemetry();

  ShardWorkerOptions options_;
  GraphBuilder builder_;
  net::FrameConn conn_;
  std::vector<ConnectionSummary> scratch_;  // reused per-batch filter buffer
  std::uint64_t records_ = 0;
  std::uint64_t windows_ = 0;
  bool failed_ = false;

  obs::Snapshot last_shipped_;          // metrics baseline for the next delta
  std::uint64_t telemetry_seq_ = 0;     // frames shipped so far
  std::size_t logs_seen_ = 0;           // LogRing records()+dropped() shipped
  std::size_t spans_seen_ = 0;          // TraceRing events()+dropped() shipped

  obs::Counter* m_records_ = nullptr;   // ccg.dist.shard.<id>.records
  obs::Counter* m_windows_ = nullptr;   // ccg.dist.shard.<id>.windows_shipped
  obs::Counter* m_bytes_ = nullptr;     // ccg.dist.shard.<id>.bytes_shipped
  obs::Counter* m_telemetry_ = nullptr; // ccg.dist.shard.<id>.telemetry_frames
  obs::Histogram* m_ship_ = nullptr;    // ccg.dist.shard.ship.seconds
};

}  // namespace ccg::dist

// Shard <-> aggregator message codec for the distributed collector
// (docs/DISTRIBUTED.md has the byte-level spec). Messages travel inside
// net::FrameConn frames; a message payload is `u8 type | body`, with body
// fields varint/zigzag packed exactly like the store format.
//
// The handshake is versioned and config-checked: a shard announces its
// wire version, shard id/count and graph build config in kHello; the
// aggregator replies kHelloAck only when everything agrees — on mismatch
// it closes the connection and the shard treats the missing ack as a
// refusal. Window frames embed the store's keyframe encoding, so the
// per-window partial graph crosses the wire in canonical node order.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "ccg/graph/builder.hpp"
#include "ccg/obs/log.hpp"
#include "ccg/obs/metrics.hpp"
#include "ccg/obs/span.hpp"

namespace ccg::dist {

/// First varint of every kHello: "CCGD" little-endian.
inline constexpr std::uint32_t kMagic = 0x44474343;

/// Bumped on any incompatible wire or semantics change.
/// v2: adds the out-of-band kTelemetry frame (metrics/log/span shipping).
inline constexpr std::uint16_t kWireVersion = 2;

enum class MsgType : std::uint8_t {
  kHello = 1,        // shard -> aggregator: version + shard identity + config
  kHelloAck = 2,     // aggregator -> shard: handshake accepted
  kWindow = 3,       // shard -> aggregator: one window's partial graph
  kEndOfStream = 4,  // shard -> aggregator: clean shutdown + final counts
  kTelemetry = 5,    // shard -> aggregator: out-of-band observability data
};

/// The graph-build parameters both sides must agree on for the merge to be
/// deterministic. Mismatch is a handshake refusal, not a silent skew.
struct WireConfig {
  GraphFacet facet = GraphFacet::kIp;
  std::int64_t window_minutes = 60;
  double collapse_threshold = 0.0;
  bool collapse_monitored = false;

  friend bool operator==(const WireConfig&, const WireConfig&) = default;
};

WireConfig wire_config(const GraphBuildConfig& config);

struct Hello {
  std::uint16_t version = kWireVersion;
  std::uint32_t shard_id = 0;
  std::uint32_t shard_count = 1;
  WireConfig config;
};

/// One window's partial graph from one shard. `keyframe` is the store
/// codec's kKeyframe frame payload (store::encode_frame against an empty
/// base); `trace_id` is the deterministic window trace id, shipped so the
/// aggregator's merge spans land in the same trace as the shard's build
/// spans — and verified against window_begin on receipt.
struct WindowFrame {
  std::uint32_t shard_id = 0;
  std::int64_t window_begin = 0;
  std::uint64_t trace_id = 0;
  std::vector<std::uint8_t> keyframe;
};

struct EndOfStream {
  std::uint32_t shard_id = 0;
  std::uint64_t records = 0;   // records this shard ingested
  std::uint64_t windows = 0;   // window frames it shipped
};

/// One out-of-band observability shipment from a shard worker: a metrics
/// *delta* (Registry::snapshot_delta against the last shipped snapshot —
/// counters and histogram buckets are increments, gauges and histogram
/// min/max are last-write), plus the log records and trace spans emitted
/// since the previous shipment. Strictly out-of-band: the aggregator's
/// merge output is byte-identical whether or not these frames arrive.
/// Histogram quantiles are NOT shipped; the receiver recomputes them from
/// the accumulated buckets. `seq` increments per shipment so drops are
/// observable.
struct TelemetryFrame {
  std::uint32_t shard_id = 0;
  std::uint64_t seq = 0;
  obs::Snapshot metrics;
  std::vector<obs::LogRecord> logs;
  std::vector<obs::TraceEvent> spans;
};

std::vector<std::uint8_t> encode_hello(const Hello& hello);
std::vector<std::uint8_t> encode_hello_ack();
std::vector<std::uint8_t> encode_window(const WindowFrame& frame);
std::vector<std::uint8_t> encode_end_of_stream(const EndOfStream& eos);
std::vector<std::uint8_t> encode_telemetry(const TelemetryFrame& frame);

/// Message type of a payload (nullopt on empty/unknown).
std::optional<MsgType> peek_type(std::span<const std::uint8_t> payload);

// Decoders are total: malformed input yields nullopt/false, never UB.
std::optional<Hello> decode_hello(std::span<const std::uint8_t> payload);
bool decode_hello_ack(std::span<const std::uint8_t> payload);
std::optional<WindowFrame> decode_window(std::span<const std::uint8_t> payload);
std::optional<EndOfStream> decode_end_of_stream(
    std::span<const std::uint8_t> payload);
std::optional<TelemetryFrame> decode_telemetry(
    std::span<const std::uint8_t> payload);

}  // namespace ccg::dist

#include "ccg/dist/wire.hpp"

#include <bit>

#include "ccg/store/format.hpp"

namespace ccg::dist {

namespace {

using store::put_varint;
using store::put_zigzag;

void put_config(std::vector<std::uint8_t>& out, const WireConfig& config) {
  out.push_back(static_cast<std::uint8_t>(config.facet));
  put_varint(out, static_cast<std::uint64_t>(config.window_minutes));
  // Exact bit pattern: the determinism contract includes the collapse
  // threshold, so "approximately equal" configs are not equal.
  put_varint(out, std::bit_cast<std::uint64_t>(config.collapse_threshold));
  out.push_back(config.collapse_monitored ? 1 : 0);
}

std::optional<WireConfig> get_config(store::ByteReader& in) {
  const auto facet = in.byte();
  const auto window_minutes = in.varint();
  const auto threshold_bits = in.varint();
  const auto collapse_monitored = in.byte();
  if (!facet || *facet > static_cast<std::uint8_t>(GraphFacet::kService) ||
      !window_minutes || *window_minutes == 0 ||
      *window_minutes > (1ull << 32) || !threshold_bits ||
      !collapse_monitored || *collapse_monitored > 1) {
    return std::nullopt;
  }
  WireConfig config;
  config.facet = static_cast<GraphFacet>(*facet);
  config.window_minutes = static_cast<std::int64_t>(*window_minutes);
  config.collapse_threshold = std::bit_cast<double>(*threshold_bits);
  config.collapse_monitored = *collapse_monitored == 1;
  if (!(config.collapse_threshold >= 0.0) || config.collapse_threshold >= 1.0) {
    return std::nullopt;  // also rejects NaN
  }
  return config;
}

bool type_is(std::span<const std::uint8_t> payload, MsgType t) {
  return !payload.empty() && payload[0] == static_cast<std::uint8_t>(t);
}

}  // namespace

WireConfig wire_config(const GraphBuildConfig& config) {
  return {config.facet, config.window_minutes, config.collapse_threshold,
          config.collapse_monitored};
}

std::vector<std::uint8_t> encode_hello(const Hello& hello) {
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(MsgType::kHello));
  put_varint(out, kMagic);
  put_varint(out, hello.version);
  put_varint(out, hello.shard_id);
  put_varint(out, hello.shard_count);
  put_config(out, hello.config);
  return out;
}

std::vector<std::uint8_t> encode_hello_ack() {
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(MsgType::kHelloAck));
  put_varint(out, kWireVersion);
  return out;
}

std::vector<std::uint8_t> encode_window(const WindowFrame& frame) {
  std::vector<std::uint8_t> out;
  out.reserve(frame.keyframe.size() + 32);
  out.push_back(static_cast<std::uint8_t>(MsgType::kWindow));
  put_varint(out, frame.shard_id);
  put_zigzag(out, frame.window_begin);
  put_varint(out, frame.trace_id);
  put_varint(out, frame.keyframe.size());
  out.insert(out.end(), frame.keyframe.begin(), frame.keyframe.end());
  return out;
}

std::vector<std::uint8_t> encode_end_of_stream(const EndOfStream& eos) {
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(MsgType::kEndOfStream));
  put_varint(out, eos.shard_id);
  put_varint(out, eos.records);
  put_varint(out, eos.windows);
  return out;
}

std::optional<MsgType> peek_type(std::span<const std::uint8_t> payload) {
  if (payload.empty() || payload[0] < 1 || payload[0] > 4) return std::nullopt;
  return static_cast<MsgType>(payload[0]);
}

std::optional<Hello> decode_hello(std::span<const std::uint8_t> payload) {
  if (!type_is(payload, MsgType::kHello)) return std::nullopt;
  store::ByteReader in(payload.subspan(1));
  const auto magic = in.varint();
  const auto version = in.varint();
  const auto shard_id = in.varint();
  const auto shard_count = in.varint();
  if (!magic || *magic != kMagic || !version || *version > 0xFFFF ||
      !shard_id.has_value() || !shard_count || *shard_count == 0 ||
      *shard_count > 0xFFFF || *shard_id >= *shard_count) {
    return std::nullopt;
  }
  const auto config = get_config(in);
  if (!config || !in.done()) return std::nullopt;
  Hello hello;
  hello.version = static_cast<std::uint16_t>(*version);
  hello.shard_id = static_cast<std::uint32_t>(*shard_id);
  hello.shard_count = static_cast<std::uint32_t>(*shard_count);
  hello.config = *config;
  return hello;
}

bool decode_hello_ack(std::span<const std::uint8_t> payload) {
  if (!type_is(payload, MsgType::kHelloAck)) return false;
  store::ByteReader in(payload.subspan(1));
  const auto version = in.varint();
  return version && *version == kWireVersion && in.done();
}

std::optional<WindowFrame> decode_window(std::span<const std::uint8_t> payload) {
  if (!type_is(payload, MsgType::kWindow)) return std::nullopt;
  store::ByteReader in(payload.subspan(1));
  const auto shard_id = in.varint();
  const auto window_begin = in.zigzag();
  const auto trace_id = in.varint();
  const auto keyframe_len = in.varint();
  if (!shard_id || *shard_id > 0xFFFF || !window_begin || !trace_id ||
      *trace_id == 0 || !keyframe_len) {
    return std::nullopt;
  }
  // The keyframe is the remaining bytes; its length field must match
  // exactly (a short or long tail means a framing bug, not slack). The
  // blob offset is recovered by re-encoding the scalar fields — ByteReader
  // does not expose its cursor, and canonical varint widths are unique, so
  // a non-canonical encoding is rejected here as malformed.
  const std::size_t header_len = payload.size() - 1;
  std::vector<std::uint8_t> scratch;
  put_varint(scratch, *shard_id);
  put_zigzag(scratch, *window_begin);
  put_varint(scratch, *trace_id);
  put_varint(scratch, *keyframe_len);
  const std::size_t consumed = scratch.size();
  if (header_len < consumed || header_len - consumed != *keyframe_len) {
    return std::nullopt;
  }
  WindowFrame frame;
  frame.shard_id = static_cast<std::uint32_t>(*shard_id);
  frame.window_begin = *window_begin;
  frame.trace_id = *trace_id;
  const auto blob = payload.subspan(1 + consumed);
  frame.keyframe.assign(blob.begin(), blob.end());
  return frame;
}

std::optional<EndOfStream> decode_end_of_stream(
    std::span<const std::uint8_t> payload) {
  if (!type_is(payload, MsgType::kEndOfStream)) return std::nullopt;
  store::ByteReader in(payload.subspan(1));
  const auto shard_id = in.varint();
  const auto records = in.varint();
  const auto windows = in.varint();
  if (!shard_id || *shard_id > 0xFFFF || !records || !windows || !in.done()) {
    return std::nullopt;
  }
  return EndOfStream{static_cast<std::uint32_t>(*shard_id), *records, *windows};
}

}  // namespace ccg::dist

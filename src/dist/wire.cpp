#include "ccg/dist/wire.hpp"

#include <bit>

#include "ccg/store/format.hpp"

namespace ccg::dist {

namespace {

using store::put_varint;
using store::put_zigzag;

void put_config(std::vector<std::uint8_t>& out, const WireConfig& config) {
  out.push_back(static_cast<std::uint8_t>(config.facet));
  put_varint(out, static_cast<std::uint64_t>(config.window_minutes));
  // Exact bit pattern: the determinism contract includes the collapse
  // threshold, so "approximately equal" configs are not equal.
  put_varint(out, std::bit_cast<std::uint64_t>(config.collapse_threshold));
  out.push_back(config.collapse_monitored ? 1 : 0);
}

std::optional<WireConfig> get_config(store::ByteReader& in) {
  const auto facet = in.byte();
  const auto window_minutes = in.varint();
  const auto threshold_bits = in.varint();
  const auto collapse_monitored = in.byte();
  if (!facet || *facet > static_cast<std::uint8_t>(GraphFacet::kService) ||
      !window_minutes || *window_minutes == 0 ||
      *window_minutes > (1ull << 32) || !threshold_bits ||
      !collapse_monitored || *collapse_monitored > 1) {
    return std::nullopt;
  }
  WireConfig config;
  config.facet = static_cast<GraphFacet>(*facet);
  config.window_minutes = static_cast<std::int64_t>(*window_minutes);
  config.collapse_threshold = std::bit_cast<double>(*threshold_bits);
  config.collapse_monitored = *collapse_monitored == 1;
  if (!(config.collapse_threshold >= 0.0) || config.collapse_threshold >= 1.0) {
    return std::nullopt;  // also rejects NaN
  }
  return config;
}

bool type_is(std::span<const std::uint8_t> payload, MsgType t) {
  return !payload.empty() && payload[0] == static_cast<std::uint8_t>(t);
}

// --- telemetry body helpers -------------------------------------------------
// Sanity caps: a telemetry frame is small by construction; a count beyond
// these is corruption, not a big fleet.
constexpr std::uint64_t kMaxTelemetrySeries = 65536;
constexpr std::uint64_t kMaxTelemetryBuckets = 1024;
constexpr std::uint64_t kMaxTelemetryLogs = 4096;
constexpr std::uint64_t kMaxTelemetrySpans = 65536;
constexpr std::uint64_t kMaxTelemetryString = 4096;
constexpr std::uint64_t kMaxTelemetryFields = 64;

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  put_varint(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

void put_double(std::vector<std::uint8_t>& out, double v) {
  put_varint(out, std::bit_cast<std::uint64_t>(v));
}

std::optional<std::string> get_string(store::ByteReader& in) {
  const auto len = in.varint();
  if (!len || *len > kMaxTelemetryString) return std::nullopt;
  std::string s;
  s.reserve(static_cast<std::size_t>(*len));
  for (std::uint64_t i = 0; i < *len; ++i) {
    const auto b = in.byte();
    if (!b) return std::nullopt;
    s.push_back(static_cast<char>(*b));
  }
  return s;
}

std::optional<double> get_double(store::ByteReader& in) {
  const auto bits = in.varint();
  if (!bits) return std::nullopt;
  return std::bit_cast<double>(*bits);
}

}  // namespace

WireConfig wire_config(const GraphBuildConfig& config) {
  return {config.facet, config.window_minutes, config.collapse_threshold,
          config.collapse_monitored};
}

std::vector<std::uint8_t> encode_hello(const Hello& hello) {
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(MsgType::kHello));
  put_varint(out, kMagic);
  put_varint(out, hello.version);
  put_varint(out, hello.shard_id);
  put_varint(out, hello.shard_count);
  put_config(out, hello.config);
  return out;
}

std::vector<std::uint8_t> encode_hello_ack() {
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(MsgType::kHelloAck));
  put_varint(out, kWireVersion);
  return out;
}

std::vector<std::uint8_t> encode_window(const WindowFrame& frame) {
  std::vector<std::uint8_t> out;
  out.reserve(frame.keyframe.size() + 32);
  out.push_back(static_cast<std::uint8_t>(MsgType::kWindow));
  put_varint(out, frame.shard_id);
  put_zigzag(out, frame.window_begin);
  put_varint(out, frame.trace_id);
  put_varint(out, frame.keyframe.size());
  out.insert(out.end(), frame.keyframe.begin(), frame.keyframe.end());
  return out;
}

std::vector<std::uint8_t> encode_end_of_stream(const EndOfStream& eos) {
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(MsgType::kEndOfStream));
  put_varint(out, eos.shard_id);
  put_varint(out, eos.records);
  put_varint(out, eos.windows);
  return out;
}

std::vector<std::uint8_t> encode_telemetry(const TelemetryFrame& frame) {
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(MsgType::kTelemetry));
  put_varint(out, frame.shard_id);
  put_varint(out, frame.seq);

  put_varint(out, frame.metrics.counters.size());
  for (const obs::CounterSample& c : frame.metrics.counters) {
    put_string(out, c.name);
    put_varint(out, c.value);
  }
  put_varint(out, frame.metrics.gauges.size());
  for (const obs::GaugeSample& g : frame.metrics.gauges) {
    put_string(out, g.name);
    put_double(out, g.value);
  }
  put_varint(out, frame.metrics.histograms.size());
  for (const obs::HistogramSample& h : frame.metrics.histograms) {
    put_string(out, h.name);
    put_varint(out, h.count);
    put_double(out, h.sum);
    put_double(out, h.min);
    put_double(out, h.max);
    put_varint(out, h.buckets.size());
    for (const auto& [bound, occupancy] : h.buckets) {
      put_double(out, bound);
      put_varint(out, occupancy);
    }
  }

  put_varint(out, frame.logs.size());
  for (const obs::LogRecord& r : frame.logs) {
    out.push_back(static_cast<std::uint8_t>(r.level));
    put_varint(out, r.ts_ns);
    put_varint(out, r.thread_hash);
    put_varint(out, r.trace_id);
    put_string(out, r.message);
    put_varint(out, r.fields.size());
    for (const obs::LogField& f : r.fields) {
      put_string(out, f.key);
      put_string(out, f.value);
    }
  }

  put_varint(out, frame.spans.size());
  for (const obs::TraceEvent& e : frame.spans) {
    put_string(out, e.name);
    put_varint(out, e.start_ns);
    put_varint(out, e.duration_ns);
    put_varint(out, e.thread_hash);
    put_varint(out, e.trace_id);
    put_varint(out, e.span_id);
    put_varint(out, e.parent_id);
  }
  return out;
}

std::optional<MsgType> peek_type(std::span<const std::uint8_t> payload) {
  if (payload.empty() || payload[0] < 1 || payload[0] > 5) return std::nullopt;
  return static_cast<MsgType>(payload[0]);
}

std::optional<Hello> decode_hello(std::span<const std::uint8_t> payload) {
  if (!type_is(payload, MsgType::kHello)) return std::nullopt;
  store::ByteReader in(payload.subspan(1));
  const auto magic = in.varint();
  const auto version = in.varint();
  const auto shard_id = in.varint();
  const auto shard_count = in.varint();
  if (!magic || *magic != kMagic || !version || *version > 0xFFFF ||
      !shard_id.has_value() || !shard_count || *shard_count == 0 ||
      *shard_count > 0xFFFF || *shard_id >= *shard_count) {
    return std::nullopt;
  }
  const auto config = get_config(in);
  if (!config || !in.done()) return std::nullopt;
  Hello hello;
  hello.version = static_cast<std::uint16_t>(*version);
  hello.shard_id = static_cast<std::uint32_t>(*shard_id);
  hello.shard_count = static_cast<std::uint32_t>(*shard_count);
  hello.config = *config;
  return hello;
}

bool decode_hello_ack(std::span<const std::uint8_t> payload) {
  if (!type_is(payload, MsgType::kHelloAck)) return false;
  store::ByteReader in(payload.subspan(1));
  const auto version = in.varint();
  return version && *version == kWireVersion && in.done();
}

std::optional<WindowFrame> decode_window(std::span<const std::uint8_t> payload) {
  if (!type_is(payload, MsgType::kWindow)) return std::nullopt;
  store::ByteReader in(payload.subspan(1));
  const auto shard_id = in.varint();
  const auto window_begin = in.zigzag();
  const auto trace_id = in.varint();
  const auto keyframe_len = in.varint();
  if (!shard_id || *shard_id > 0xFFFF || !window_begin || !trace_id ||
      *trace_id == 0 || !keyframe_len) {
    return std::nullopt;
  }
  // The keyframe is the remaining bytes; its length field must match
  // exactly (a short or long tail means a framing bug, not slack). The
  // blob offset is recovered by re-encoding the scalar fields — ByteReader
  // does not expose its cursor, and canonical varint widths are unique, so
  // a non-canonical encoding is rejected here as malformed.
  const std::size_t header_len = payload.size() - 1;
  std::vector<std::uint8_t> scratch;
  put_varint(scratch, *shard_id);
  put_zigzag(scratch, *window_begin);
  put_varint(scratch, *trace_id);
  put_varint(scratch, *keyframe_len);
  const std::size_t consumed = scratch.size();
  if (header_len < consumed || header_len - consumed != *keyframe_len) {
    return std::nullopt;
  }
  WindowFrame frame;
  frame.shard_id = static_cast<std::uint32_t>(*shard_id);
  frame.window_begin = *window_begin;
  frame.trace_id = *trace_id;
  const auto blob = payload.subspan(1 + consumed);
  frame.keyframe.assign(blob.begin(), blob.end());
  return frame;
}

std::optional<EndOfStream> decode_end_of_stream(
    std::span<const std::uint8_t> payload) {
  if (!type_is(payload, MsgType::kEndOfStream)) return std::nullopt;
  store::ByteReader in(payload.subspan(1));
  const auto shard_id = in.varint();
  const auto records = in.varint();
  const auto windows = in.varint();
  if (!shard_id || *shard_id > 0xFFFF || !records || !windows || !in.done()) {
    return std::nullopt;
  }
  return EndOfStream{static_cast<std::uint32_t>(*shard_id), *records, *windows};
}

std::optional<TelemetryFrame> decode_telemetry(
    std::span<const std::uint8_t> payload) {
  if (!type_is(payload, MsgType::kTelemetry)) return std::nullopt;
  store::ByteReader in(payload.subspan(1));
  const auto shard_id = in.varint();
  const auto seq = in.varint();
  if (!shard_id || *shard_id > 0xFFFF || !seq) return std::nullopt;
  TelemetryFrame frame;
  frame.shard_id = static_cast<std::uint32_t>(*shard_id);
  frame.seq = *seq;

  const auto n_counters = in.varint();
  if (!n_counters || *n_counters > kMaxTelemetrySeries) return std::nullopt;
  frame.metrics.counters.reserve(static_cast<std::size_t>(*n_counters));
  for (std::uint64_t i = 0; i < *n_counters; ++i) {
    auto name = get_string(in);
    const auto value = in.varint();
    if (!name || !value) return std::nullopt;
    frame.metrics.counters.push_back({std::move(*name), *value, {}});
  }

  const auto n_gauges = in.varint();
  if (!n_gauges || *n_gauges > kMaxTelemetrySeries) return std::nullopt;
  frame.metrics.gauges.reserve(static_cast<std::size_t>(*n_gauges));
  for (std::uint64_t i = 0; i < *n_gauges; ++i) {
    auto name = get_string(in);
    const auto value = get_double(in);
    if (!name || !value) return std::nullopt;
    frame.metrics.gauges.push_back({std::move(*name), *value, {}});
  }

  const auto n_histograms = in.varint();
  if (!n_histograms || *n_histograms > kMaxTelemetrySeries) return std::nullopt;
  frame.metrics.histograms.reserve(static_cast<std::size_t>(*n_histograms));
  for (std::uint64_t i = 0; i < *n_histograms; ++i) {
    obs::HistogramSample h;
    auto name = get_string(in);
    const auto count = in.varint();
    const auto sum = get_double(in);
    const auto min = get_double(in);
    const auto max = get_double(in);
    const auto n_buckets = in.varint();
    if (!name || !count || !sum || !min || !max || !n_buckets ||
        *n_buckets > kMaxTelemetryBuckets) {
      return std::nullopt;
    }
    h.name = std::move(*name);
    h.count = *count;
    h.sum = *sum;
    h.min = *min;
    h.max = *max;
    h.buckets.reserve(static_cast<std::size_t>(*n_buckets));
    for (std::uint64_t b = 0; b < *n_buckets; ++b) {
      const auto bound = get_double(in);
      const auto occupancy = in.varint();
      if (!bound || !occupancy) return std::nullopt;
      h.buckets.emplace_back(*bound, *occupancy);
    }
    // Quantiles are receiver-side; recompute so the decoded sample is
    // self-consistent even before fleet accumulation.
    h.p50 = obs::quantile_from_buckets(h.buckets, h.count, h.min, h.max, 0.50);
    h.p90 = obs::quantile_from_buckets(h.buckets, h.count, h.min, h.max, 0.90);
    h.p99 = obs::quantile_from_buckets(h.buckets, h.count, h.min, h.max, 0.99);
    frame.metrics.histograms.push_back(std::move(h));
  }

  const auto n_logs = in.varint();
  if (!n_logs || *n_logs > kMaxTelemetryLogs) return std::nullopt;
  frame.logs.reserve(static_cast<std::size_t>(*n_logs));
  for (std::uint64_t i = 0; i < *n_logs; ++i) {
    obs::LogRecord r;
    const auto level = in.byte();
    const auto ts = in.varint();
    const auto thread_hash = in.varint();
    const auto trace_id = in.varint();
    auto message = get_string(in);
    const auto n_fields = in.varint();
    if (!level || *level > 3 || !ts || !thread_hash || !trace_id || !message ||
        !n_fields || *n_fields > kMaxTelemetryFields) {
      return std::nullopt;
    }
    r.level = static_cast<obs::LogLevel>(*level);
    r.ts_ns = *ts;
    r.thread_hash = *thread_hash;
    r.trace_id = *trace_id;
    r.message = std::move(*message);
    r.fields.reserve(static_cast<std::size_t>(*n_fields));
    for (std::uint64_t f = 0; f < *n_fields; ++f) {
      auto key = get_string(in);
      auto value = get_string(in);
      if (!key || !value) return std::nullopt;
      r.fields.push_back({std::move(*key), std::move(*value)});
    }
    frame.logs.push_back(std::move(r));
  }

  const auto n_spans = in.varint();
  if (!n_spans || *n_spans > kMaxTelemetrySpans) return std::nullopt;
  frame.spans.reserve(static_cast<std::size_t>(*n_spans));
  for (std::uint64_t i = 0; i < *n_spans; ++i) {
    obs::TraceEvent e;
    auto name = get_string(in);
    const auto start = in.varint();
    const auto duration = in.varint();
    const auto thread_hash = in.varint();
    const auto trace_id = in.varint();
    const auto span_id = in.varint();
    const auto parent_id = in.varint();
    if (!name || !start || !duration || !thread_hash || !trace_id ||
        !span_id || !parent_id) {
      return std::nullopt;
    }
    e.name = std::move(*name);
    e.start_ns = *start;
    e.duration_ns = *duration;
    e.thread_hash = *thread_hash;
    e.trace_id = *trace_id;
    e.span_id = *span_id;
    e.parent_id = *parent_id;
    frame.spans.push_back(std::move(e));
  }

  if (!in.done()) return std::nullopt;
  return frame;
}

}  // namespace ccg::dist

#include "ccg/dist/aggregator.hpp"

#include <chrono>
#include <limits>
#include <string>
#include <utility>

#include "ccg/obs/fleet.hpp"
#include "ccg/obs/flight.hpp"
#include "ccg/obs/log.hpp"
#include "ccg/obs/span.hpp"
#include "ccg/obs/trace.hpp"
#include "ccg/store/format.hpp"

namespace ccg::dist {

Aggregator::Aggregator(AggregatorOptions options,
                       std::vector<net::FrameConn> conns)
    : options_(std::move(options)), incoming_(std::move(conns)) {
  obs::Registry& registry = obs::Registry::global();
  m_windows_merged_ = &registry.counter("ccg.dist.agg.windows_merged");
  m_frames_ = &registry.counter("ccg.dist.agg.frames_received");
  m_telemetry_ = &registry.counter("ccg.dist.agg.telemetry_frames");
  m_pending_hwm_ = &registry.gauge("ccg.dist.agg.queue_depth_hwm");
  m_merge_wait_ = &obs::span_histogram("ccg.dist.agg.merge_wait");
  m_merge_ = &obs::span_histogram("ccg.dist.agg.window_merge");

  shards_.resize(incoming_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::string prefix = "ccg.dist.agg.shard." + std::to_string(s);
    shards_[s].windows = &registry.counter(prefix + ".windows");
    shards_[s].bytes = &registry.counter(prefix + ".bytes");
  }
}

bool Aggregator::handshake() {
  const WireConfig expected = wire_config(options_.graph);
  for (net::FrameConn& conn : incoming_) {
    std::vector<std::uint8_t> payload;
    const net::RecvStatus status = conn.recv(payload, options_.recv_timeout_ms);
    if (status != net::RecvStatus::kOk) {
      fail(0, "no hello from shard", 0);
      return false;
    }
    const auto hello = decode_hello(payload);
    if (!hello || hello->version != kWireVersion) {
      obs::log_error("dist: handshake version mismatch — refusing shard",
                     {obs::field("got_version", hello ? hello->version : 0),
                      obs::field("want_version", kWireVersion)});
      conn.close();  // no ack: the shard reads this as refusal
      return false;
    }
    if (hello->shard_count != shards_.size() ||
        hello->shard_id >= shards_.size() ||
        shards_[hello->shard_id].conn.valid() ||
        !(hello->config == expected)) {
      obs::log_error("dist: handshake config mismatch — refusing shard",
                     {obs::field("announced_shard", hello->shard_id),
                      obs::field("announced_count", hello->shard_count),
                      obs::field("want_count", shards_.size())});
      conn.close();
      return false;
    }
    // Workers race to connect, so arrival order is arbitrary: the hello's
    // shard id decides the slot, which keeps the merge order (ascending
    // shard id) independent of connection timing.
    const std::size_t s = hello->shard_id;
    shards_[s].conn = std::move(conn);
    shards_[s].conn.set_shard(static_cast<int>(s));
    if (!shards_[s].conn.send(encode_hello_ack())) {
      fail(s, "hello ack send failed", 0);
      return false;
    }
  }
  incoming_.clear();
  return true;
}

bool Aggregator::advance(std::size_t s) {
  ShardState& shard = shards_[s];
  while (!shard.done && !shard.head) {
    std::vector<std::uint8_t> payload;
    const net::RecvStatus status =
        shard.conn.recv(payload, options_.recv_timeout_ms);
    if (status != net::RecvStatus::kOk) {
      // A clean EOF without kEndOfStream is a crashed shard: its final
      // windows may be missing, so the run cannot be trusted.
      fail(s,
           status == net::RecvStatus::kTimeout ? "shard timed out"
           : status == net::RecvStatus::kEof   ? "shard closed without end-of-stream"
                                               : "shard stream error",
           0);
      return false;
    }
    m_frames_->add();
    switch (peek_type(payload).value_or(static_cast<MsgType>(0))) {
      case MsgType::kWindow: {
        auto frame = decode_window(payload);
        if (!frame || frame->shard_id != s) {
          fail(s, "undecodable window frame", 0);
          return false;
        }
        // The shipped trace id must be the deterministic one — a mismatch
        // means the processes disagree about window identity.
        if (frame->trace_id != obs::window_trace_id(frame->window_begin)) {
          fail(s, "window trace id mismatch", frame->window_begin);
          return false;
        }
        // Windows must arrive in increasing order per shard; the barrier
        // relies on it.
        shard.bytes->add(payload.size());
        shard.head = std::move(*frame);
        break;
      }
      case MsgType::kEndOfStream: {
        const auto eos = decode_end_of_stream(payload);
        if (!eos || eos->shard_id != s || eos->windows != shard.merged) {
          fail(s, "inconsistent end-of-stream", 0);
          return false;
        }
        shard.records = eos->records;
        shard.done = true;
        break;
      }
      case MsgType::kTelemetry: {
        // Out-of-band: merged into the fleet registry and the barrier loop
        // keeps reading. A malformed frame still fails the run — the
        // transport is supposed to be clean.
        auto frame = decode_telemetry(payload);
        if (!frame || frame->shard_id != s) {
          fail(s, "undecodable telemetry frame", 0);
          return false;
        }
        obs::FleetRegistry& fleet = obs::FleetRegistry::global();
        fleet.apply(frame->shard_id, frame->metrics);
        if (!frame->logs.empty()) {
          // Shipped records worth mirroring reach this terminal too,
          // tagged with their shard — through the same threshold and rate
          // limiter as local records.
          for (const obs::LogRecord& record : frame->logs) {
            obs::mirror_shard_record(frame->shard_id, record);
          }
          fleet.add_logs(frame->shard_id, frame->logs);
        }
        if (!frame->spans.empty()) {
          fleet.add_spans(frame->shard_id, frame->spans);
        }
        m_telemetry_->add();
        break;
      }
      default:
        fail(s, "unexpected message type", 0);
        return false;
    }
  }
  return true;
}

std::optional<Aggregator::Result> Aggregator::run(const WindowSink& sink) {
  Result result;
  std::int64_t last_window = std::numeric_limits<std::int64_t>::min();
  for (;;) {
    // Barrier: learn every live shard's next window (or its end-of-stream)
    // before deciding what to merge. The wait is the distributed analogue
    // of the pipeline's window_merge stall and is tracked per window.
    {
      obs::ScopedSpan wait(*m_merge_wait_, "ccg.dist.agg.merge_wait");
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        if (!advance(s)) return std::nullopt;
      }
    }

    std::int64_t window = std::numeric_limits<std::int64_t>::max();
    std::size_t pending = 0;
    for (const ShardState& shard : shards_) {
      if (shard.head) {
        ++pending;
        window = std::min(window, shard.head->window_begin);
      }
    }
    m_pending_hwm_->update_max(static_cast<double>(pending));
    if (pending == 0) break;  // every shard done and drained

    if (window <= last_window) {
      // Out-of-order shipment breaks the barrier invariant.
      fail(0, "window order violation", window);
      return std::nullopt;
    }
    last_window = window;

    const std::uint64_t trace_id = obs::window_trace_id(window);
    obs::TraceScope trace({trace_id, 0});
    obs::ScopedSpan span(*m_merge_, "ccg.dist.agg.window_merge");

    // Ascending shard order: merge order is part of the determinism
    // contract (merge_graphs assigns NodeIds in first-seen order, and the
    // canonical pass needs identical inputs to be provably identical).
    std::vector<CommGraph> parts;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      ShardState& shard = shards_[s];
      if (!shard.head || shard.head->window_begin != window) continue;
      auto part = store::decode_frame(shard.head->keyframe, CommGraph());
      if (!part || part->window().begin().index() != window) {
        fail(s, "undecodable window keyframe", window);
        return std::nullopt;
      }
      shard.windows->add();
      ++shard.merged;
      parts.push_back(std::move(*part));
      shard.head.reset();
    }
    const CommGraph merged =
        finalize_window_graph(merge_graphs(parts), options_.graph);
    sink(merged);
    ++result.windows;
    m_windows_merged_->add();
  }

  for (const ShardState& shard : shards_) result.records += shard.records;
  return result;
}

void Aggregator::fail(std::size_t shard, const char* reason,
                      std::int64_t window_begin) {
  const std::uint64_t trace_id =
      window_begin != 0 ? obs::window_trace_id(window_begin) : 0;
  obs::log_error("dist: aggregation failed — aborting run",
                 {obs::field("shard", shard), obs::field("reason", reason),
                  obs::field("window_begin", window_begin),
                  obs::field("trace", trace_id)});
  const std::string dir = options_.flight_dir.empty() ? "." : options_.flight_dir;
  const std::string path = obs::dump_flight_record(
      dir, "shard-failure", trace_id,
      "shard " + std::to_string(shard) + ": " + reason);
  if (!path.empty()) {
    obs::log_error("dist: flight record dumped", {obs::field("path", path)});
  }
}

}  // namespace ccg::dist

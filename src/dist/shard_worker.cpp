#include "ccg/dist/shard_worker.hpp"

#include <string>
#include <utility>

#include "ccg/obs/log.hpp"
#include "ccg/obs/span.hpp"
#include "ccg/obs/trace.hpp"
#include "ccg/store/format.hpp"

namespace ccg::dist {

namespace {

/// Shards build partial graphs: same facet and window length as the job,
/// collapse off. The aggregator collapses after the merge, exactly like
/// the in-process pipeline.
GraphBuildConfig partial_config(const GraphBuildConfig& job) {
  GraphBuildConfig config = job;
  config.collapse_threshold = 0.0;
  return config;
}

}  // namespace

ShardWorker::ShardWorker(ShardWorkerOptions options,
                         std::unordered_set<IpAddr> monitored,
                         net::FrameConn conn)
    : options_(options),
      builder_(partial_config(options.graph), std::move(monitored)),
      conn_(std::move(conn)) {
  conn_.set_shard(static_cast<int>(options_.shard_id));
  obs::Registry& registry = obs::Registry::global();
  const std::string prefix =
      "ccg.dist.shard." + std::to_string(options_.shard_id);
  m_records_ = &registry.counter(prefix + ".records");
  m_windows_ = &registry.counter(prefix + ".windows_shipped");
  m_bytes_ = &registry.counter(prefix + ".bytes_shipped");
  m_ship_ = &obs::span_histogram("ccg.dist.shard.ship");
}

bool ShardWorker::handshake() {
  Hello hello;
  hello.shard_id = options_.shard_id;
  hello.shard_count = options_.shard_count;
  hello.config = wire_config(options_.graph);
  if (!conn_.send(encode_hello(hello))) {
    failed_ = true;
    return false;
  }
  std::vector<std::uint8_t> payload;
  const net::RecvStatus status = conn_.recv(payload);
  if (status != net::RecvStatus::kOk || !decode_hello_ack(payload)) {
    // A clean EOF here is the aggregator's refusal (version or config
    // mismatch): it closes without acking.
    obs::log_error("dist: handshake refused by aggregator",
                   {obs::field("shard", options_.shard_id),
                    obs::field("peer", conn_.peer()),
                    obs::field("recv_status", static_cast<int>(status))});
    failed_ = true;
    return false;
  }
  return true;
}

void ShardWorker::on_batch(MinuteBucket time,
                           const std::vector<ConnectionSummary>& batch) {
  scratch_.clear();
  for (const ConnectionSummary& record : batch) {
    if (shard_of_record(record, options_.graph.facet, options_.shard_count) ==
        options_.shard_id) {
      scratch_.push_back(record);
    }
  }
  records_ += scratch_.size();
  m_records_->add(scratch_.size());
  builder_.on_batch(time, scratch_);
  if (!ship_closed_windows()) failed_ = true;
}

bool ShardWorker::ship_closed_windows() {
  static const CommGraph empty_base;
  bool ok = true;
  for (const CommGraph& graph : builder_.take_graphs()) {
    const std::int64_t begin = graph.window().begin().index();
    WindowFrame frame;
    frame.shard_id = options_.shard_id;
    frame.window_begin = begin;
    frame.trace_id = obs::window_trace_id(begin);
    // The ship span belongs to the window being shipped; the aggregator
    // re-installs the same trace id around its merge, so the distributed
    // window's spans line up across processes.
    obs::TraceScope trace({frame.trace_id, 0});
    obs::ScopedSpan span(*m_ship_, "ccg.dist.shard.ship");
    frame.keyframe =
        store::encode_frame(store::FrameKind::kKeyframe, empty_base, graph);
    const std::vector<std::uint8_t> payload = encode_window(frame);
    if (!conn_.send(payload)) {
      obs::log_error("dist: window ship failed",
                     {obs::field("shard", options_.shard_id),
                      obs::field("window_begin", begin),
                      obs::field("trace", frame.trace_id)});
      ok = false;
      continue;
    }
    ++windows_;
    m_windows_->add();
    m_bytes_->add(payload.size());
  }
  return ok;
}

bool ShardWorker::finish() {
  builder_.flush();
  if (!ship_closed_windows()) failed_ = true;
  EndOfStream eos;
  eos.shard_id = options_.shard_id;
  eos.records = records_;
  eos.windows = windows_;
  if (!conn_.send(encode_end_of_stream(eos))) failed_ = true;
  if (failed_) {
    obs::log_error("dist: shard worker finished with transport errors",
                   {obs::field("shard", options_.shard_id),
                    obs::field("records", records_),
                    obs::field("windows", windows_)});
  }
  return !failed_;
}

}  // namespace ccg::dist

#include "ccg/dist/shard_worker.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "ccg/obs/log.hpp"
#include "ccg/obs/span.hpp"
#include "ccg/obs/trace.hpp"
#include "ccg/store/format.hpp"

namespace ccg::dist {

namespace {

/// Shards build partial graphs: same facet and window length as the job,
/// collapse off. The aggregator collapses after the merge, exactly like
/// the in-process pipeline.
GraphBuildConfig partial_config(const GraphBuildConfig& job) {
  GraphBuildConfig config = job;
  config.collapse_threshold = 0.0;
  return config;
}

}  // namespace

ShardWorker::ShardWorker(ShardWorkerOptions options,
                         std::unordered_set<IpAddr> monitored,
                         net::FrameConn conn)
    : options_(options),
      builder_(partial_config(options.graph), std::move(monitored)),
      conn_(std::move(conn)) {
  conn_.set_shard(static_cast<int>(options_.shard_id));
  obs::Registry& registry = obs::Registry::global();
  const std::string prefix =
      "ccg.dist.shard." + std::to_string(options_.shard_id);
  m_records_ = &registry.counter(prefix + ".records");
  m_windows_ = &registry.counter(prefix + ".windows_shipped");
  m_bytes_ = &registry.counter(prefix + ".bytes_shipped");
  m_telemetry_ = &registry.counter(prefix + ".telemetry_frames");
  m_ship_ = &obs::span_histogram("ccg.dist.shard.ship");
}

bool ShardWorker::handshake() {
  Hello hello;
  hello.shard_id = options_.shard_id;
  hello.shard_count = options_.shard_count;
  hello.config = wire_config(options_.graph);
  if (!conn_.send(encode_hello(hello))) {
    failed_ = true;
    return false;
  }
  std::vector<std::uint8_t> payload;
  const net::RecvStatus status = conn_.recv(payload);
  if (status != net::RecvStatus::kOk || !decode_hello_ack(payload)) {
    // A clean EOF here is the aggregator's refusal (version or config
    // mismatch): it closes without acking.
    obs::log_error("dist: handshake refused by aggregator",
                   {obs::field("shard", options_.shard_id),
                    obs::field("peer", conn_.peer()),
                    obs::field("recv_status", static_cast<int>(status))});
    failed_ = true;
    return false;
  }
  return true;
}

void ShardWorker::on_batch(MinuteBucket time,
                           const std::vector<ConnectionSummary>& batch) {
  scratch_.clear();
  for (const ConnectionSummary& record : batch) {
    if (shard_of_record(record, options_.graph.facet, options_.shard_count) ==
        options_.shard_id) {
      scratch_.push_back(record);
    }
  }
  records_ += scratch_.size();
  m_records_->add(scratch_.size());
  builder_.on_batch(time, scratch_);
  if (!ship_closed_windows()) failed_ = true;
}

bool ShardWorker::ship_closed_windows() {
  static const CommGraph empty_base;
  bool ok = true;
  for (const CommGraph& graph : builder_.take_graphs()) {
    const std::int64_t begin = graph.window().begin().index();
    WindowFrame frame;
    frame.shard_id = options_.shard_id;
    frame.window_begin = begin;
    frame.trace_id = obs::window_trace_id(begin);
    // The ship span belongs to the window being shipped; the aggregator
    // re-installs the same trace id around its merge, so the distributed
    // window's spans line up across processes.
    obs::TraceScope trace({frame.trace_id, 0});
    obs::ScopedSpan span(*m_ship_, "ccg.dist.shard.ship");
    frame.keyframe =
        store::encode_frame(store::FrameKind::kKeyframe, empty_base, graph);
    const std::vector<std::uint8_t> payload = encode_window(frame);
    if (!conn_.send(payload)) {
      obs::log_error("dist: window ship failed",
                     {obs::field("shard", options_.shard_id),
                      obs::field("window_begin", begin),
                      obs::field("trace", frame.trace_id)});
      ok = false;
      continue;
    }
    ++windows_;
    m_windows_->add();
    m_bytes_->add(payload.size());
  }
  // Piggyback one telemetry shipment on window traffic: the aggregator
  // sees fresh per-shard series at window granularity without a timer.
  ship_telemetry();
  return ok;
}

void ShardWorker::ship_telemetry() {
  TelemetryFrame frame;
  frame.shard_id = options_.shard_id;
  obs::Snapshot current;
  frame.metrics =
      obs::Registry::global().snapshot_delta(last_shipped_, &current);

  obs::LogRing& logs = obs::LogRing::global();
  const std::vector<obs::LogRecord> retained_logs = logs.records();
  const std::size_t logs_total = retained_logs.size() + logs.dropped();
  if (logs_total > logs_seen_) {
    const std::size_t fresh =
        std::min(logs_total - logs_seen_, retained_logs.size());
    frame.logs.assign(retained_logs.end() - static_cast<std::ptrdiff_t>(fresh),
                      retained_logs.end());
  }

  obs::TraceRing& traces = obs::TraceRing::global();
  const std::vector<obs::TraceEvent> retained_spans = traces.events();
  const std::size_t spans_total = retained_spans.size() + traces.dropped();
  if (spans_total > spans_seen_) {
    const std::size_t fresh =
        std::min(spans_total - spans_seen_, retained_spans.size());
    frame.spans.assign(
        retained_spans.end() - static_cast<std::ptrdiff_t>(fresh),
        retained_spans.end());
  }

  if (frame.metrics.counters.empty() && frame.metrics.gauges.empty() &&
      frame.metrics.histograms.empty() && frame.logs.empty() &&
      frame.spans.empty()) {
    return;  // nothing new; don't burn a frame
  }
  frame.seq = telemetry_seq_;
  if (!conn_.send(encode_telemetry(frame))) {
    // Out-of-band: a lost telemetry frame never fails the worker. The
    // baselines are not advanced, so the data rides the next shipment.
    obs::log_warn("dist: telemetry ship failed",
                  {obs::field("shard", options_.shard_id),
                   obs::field("seq", frame.seq)});
    return;
  }
  ++telemetry_seq_;
  m_telemetry_->add();
  last_shipped_ = std::move(current);
  logs_seen_ = logs_total;
  spans_seen_ = spans_total;
}

bool ShardWorker::finish() {
  builder_.flush();
  if (!ship_closed_windows()) failed_ = true;
  EndOfStream eos;
  eos.shard_id = options_.shard_id;
  eos.records = records_;
  eos.windows = windows_;
  if (!conn_.send(encode_end_of_stream(eos))) failed_ = true;
  if (failed_) {
    obs::log_error("dist: shard worker finished with transport errors",
                   {obs::field("shard", options_.shard_id),
                    obs::field("records", records_),
                    obs::field("windows", windows_)});
  }
  return !failed_;
}

}  // namespace ccg::dist

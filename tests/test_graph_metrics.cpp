#include "ccg/graph/metrics.hpp"

#include <gtest/gtest.h>

#include "ccg/graph/delta.hpp"

namespace ccg {
namespace {

CommGraph path_graph(std::size_t n) {
  CommGraph g;
  std::vector<NodeId> ids;
  for (std::size_t i = 0; i < n; ++i) {
    ids.push_back(g.add_node(NodeKey::for_ip(IpAddr(0x0A000000u + static_cast<std::uint32_t>(i)))));
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    g.add_edge_volume(ids[i], ids[i + 1], 100, 100, 1, 1, 1, 1);
  }
  return g;
}

CommGraph triangle_plus_isolated() {
  CommGraph g;
  const NodeId a = g.add_node(NodeKey::for_ip(IpAddr(1u)));
  const NodeId b = g.add_node(NodeKey::for_ip(IpAddr(2u)));
  const NodeId c = g.add_node(NodeKey::for_ip(IpAddr(3u)));
  g.add_node(NodeKey::for_ip(IpAddr(4u)));  // isolated
  g.add_edge_volume(a, b, 10, 0, 1, 0, 1, 1);
  g.add_edge_volume(b, c, 10, 0, 1, 0, 1, 1);
  g.add_edge_volume(a, c, 10, 0, 1, 0, 1, 1);
  return g;
}

TEST(GraphMetrics, EmptyGraph) {
  const auto m = compute_metrics(CommGraph{});
  EXPECT_EQ(m.nodes, 0u);
  EXPECT_EQ(m.edges, 0u);
  EXPECT_EQ(m.components, 0u);
}

TEST(GraphMetrics, PathGraphValues) {
  const auto m = compute_metrics(path_graph(5));
  EXPECT_EQ(m.nodes, 5u);
  EXPECT_EQ(m.edges, 4u);
  EXPECT_EQ(m.components, 1u);
  EXPECT_EQ(m.largest_component, 5u);
  EXPECT_EQ(m.max_degree, 2u);
  EXPECT_DOUBLE_EQ(m.mean_degree, 1.6);
  EXPECT_DOUBLE_EQ(m.density, 4.0 / 10.0);
  EXPECT_DOUBLE_EQ(m.clustering_coefficient, 0.0);  // paths have no triangles
}

TEST(GraphMetrics, TriangleClustersPerfectly) {
  const auto m = compute_metrics(triangle_plus_isolated());
  EXPECT_EQ(m.components, 2u);
  EXPECT_EQ(m.largest_component, 3u);
  EXPECT_DOUBLE_EQ(m.clustering_coefficient, 1.0);
  EXPECT_EQ(m.total_bytes, 30u);
}

TEST(ConnectedComponents, LabelsAreConsistent) {
  const auto g = triangle_plus_isolated();
  const auto labels = connected_components(g);
  ASSERT_EQ(labels.size(), 4u);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_NE(labels[0], labels[3]);
}

TEST(TopDegreeNodes, OrdersHubsFirst) {
  CommGraph g;
  const NodeId hub = g.add_node(NodeKey::for_ip(IpAddr(100u)));
  for (std::uint32_t i = 0; i < 6; ++i) {
    const NodeId spoke = g.add_node(NodeKey::for_ip(IpAddr(200u + i)));
    g.add_edge_volume(hub, spoke, 10, 0, 1, 0, 1, 1);
  }
  const auto top = top_degree_nodes(g, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], hub);
}

TEST(GraphDelta, IdenticalGraphsAreFullyStable) {
  const auto g = path_graph(6);
  const auto d = diff_graphs(g, g);
  EXPECT_TRUE(d.nodes_added.empty());
  EXPECT_TRUE(d.nodes_removed.empty());
  EXPECT_TRUE(d.edges_added.empty());
  EXPECT_TRUE(d.edges_removed.empty());
  EXPECT_TRUE(d.edges_changed.empty());
  EXPECT_EQ(d.edges_stable, 5u);
  EXPECT_DOUBLE_EQ(d.edge_jaccard, 1.0);
  EXPECT_DOUBLE_EQ(d.byte_weighted_overlap, 1.0);
}

TEST(GraphDelta, DetectsAddedRemovedAndChangedEdges) {
  CommGraph before;
  const NodeId a = before.add_node(NodeKey::for_ip(IpAddr(1u)));
  const NodeId b = before.add_node(NodeKey::for_ip(IpAddr(2u)));
  const NodeId c = before.add_node(NodeKey::for_ip(IpAddr(3u)));
  before.add_edge_volume(a, b, 100, 0, 1, 0, 1, 1);   // will stay
  before.add_edge_volume(b, c, 100, 0, 1, 0, 1, 1);   // will disappear

  CommGraph after;
  const NodeId a2 = after.add_node(NodeKey::for_ip(IpAddr(1u)));
  const NodeId b2 = after.add_node(NodeKey::for_ip(IpAddr(2u)));
  const NodeId d2 = after.add_node(NodeKey::for_ip(IpAddr(4u)));  // new node
  after.add_edge_volume(a2, b2, 1000, 0, 1, 0, 1, 1);  // grew 10x
  after.add_edge_volume(a2, d2, 50, 0, 1, 0, 1, 1);    // new edge

  const auto delta = diff_graphs(before, after, 4.0);
  ASSERT_EQ(delta.nodes_added.size(), 1u);
  EXPECT_EQ(delta.nodes_added[0].ip, IpAddr(4u));
  ASSERT_EQ(delta.nodes_removed.size(), 1u);
  EXPECT_EQ(delta.nodes_removed[0].ip, IpAddr(3u));
  ASSERT_EQ(delta.edges_added.size(), 1u);
  ASSERT_EQ(delta.edges_removed.size(), 1u);
  ASSERT_EQ(delta.edges_changed.size(), 1u);
  EXPECT_DOUBLE_EQ(delta.edges_changed[0].ratio(), 10.0);
  EXPECT_EQ(delta.edges_stable, 0u);
  // 1 common edge of 3 total distinct edges.
  EXPECT_NEAR(delta.edge_jaccard, 1.0 / 3.0, 1e-12);
  // 1000 of 1050 after-bytes ride on a pre-existing edge.
  EXPECT_NEAR(delta.byte_weighted_overlap, 1000.0 / 1050.0, 1e-12);
}

TEST(GraphDelta, VolumeFactorBoundsChangeDetection) {
  CommGraph before;
  const NodeId a = before.add_node(NodeKey::for_ip(IpAddr(1u)));
  const NodeId b = before.add_node(NodeKey::for_ip(IpAddr(2u)));
  before.add_edge_volume(a, b, 100, 0, 1, 0, 1, 1);

  CommGraph after;
  const NodeId a2 = after.add_node(NodeKey::for_ip(IpAddr(1u)));
  const NodeId b2 = after.add_node(NodeKey::for_ip(IpAddr(2u)));
  after.add_edge_volume(a2, b2, 300, 0, 1, 0, 1, 1);  // 3x growth

  EXPECT_EQ(diff_graphs(before, after, 4.0).edges_changed.size(), 0u);
  EXPECT_EQ(diff_graphs(before, after, 2.0).edges_changed.size(), 1u);
}

}  // namespace
}  // namespace ccg

#include "ccg/graph/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ccg/common/rng.hpp"

namespace ccg {
namespace {

CommGraph random_graph(std::uint64_t seed, std::size_t nodes = 30,
                       std::size_t edges = 80) {
  Rng rng(seed);
  CommGraph g(TimeWindow::hour(3));
  for (std::size_t i = 0; i < nodes; ++i) {
    const bool with_port = rng.chance(0.3);
    const NodeId id = g.add_node(
        with_port ? NodeKey::for_ip_port(IpAddr(static_cast<std::uint32_t>(i + 1)),
                                         static_cast<std::uint16_t>(rng.uniform(65536)))
                  : NodeKey::for_ip(IpAddr(static_cast<std::uint32_t>(i + 1))));
    g.set_monitored(id, rng.chance(0.5));
  }
  for (std::size_t e = 0; e < edges; ++e) {
    const NodeId a = static_cast<NodeId>(rng.uniform(nodes));
    NodeId b = static_cast<NodeId>(rng.uniform(nodes));
    if (a == b) b = (b + 1) % nodes;
    g.add_edge_volume(a, b, rng.uniform(1 << 20), rng.uniform(1 << 20),
                      rng.uniform(1 << 10), rng.uniform(1 << 10),
                      1 + rng.uniform(60), 1 + static_cast<std::uint32_t>(rng.uniform(60)),
                      rng.uniform(30), rng.uniform(30),
                      rng.chance(0.8) ? static_cast<std::int32_t>(rng.uniform(65536)) : -1);
  }
  return g;
}

void expect_graphs_equal(const CommGraph& a, const CommGraph& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  ASSERT_EQ(a.edge_count(), b.edge_count());
  EXPECT_EQ(a.window(), b.window());
  EXPECT_EQ(a.total_bytes(), b.total_bytes());
  for (NodeId i = 0; i < a.node_count(); ++i) {
    EXPECT_EQ(a.key(i), b.key(i));
    EXPECT_EQ(a.node_stats(i).monitored, b.node_stats(i).monitored);
    EXPECT_EQ(a.node_stats(i).bytes, b.node_stats(i).bytes);
    EXPECT_EQ(a.node_stats(i).collapsed_members, b.node_stats(i).collapsed_members);
  }
  for (EdgeId e = 0; e < a.edge_count(); ++e) {
    const EdgeStats& sa = a.edge(e).stats;
    const EdgeStats& sb = b.edge(e).stats;
    EXPECT_EQ(a.edge(e).a, b.edge(e).a);
    EXPECT_EQ(a.edge(e).b, b.edge(e).b);
    EXPECT_EQ(sa.bytes_ab, sb.bytes_ab);
    EXPECT_EQ(sa.bytes_ba, sb.bytes_ba);
    EXPECT_EQ(sa.packets_ab, sb.packets_ab);
    EXPECT_EQ(sa.connection_minutes, sb.connection_minutes);
    EXPECT_EQ(sa.client_minutes_ab, sb.client_minutes_ab);
    EXPECT_EQ(sa.client_minutes_ba, sb.client_minutes_ba);
    EXPECT_EQ(sa.server_port_hint, sb.server_port_hint);
  }
}

TEST(GraphSerialize, RoundTripsRandomGraphs) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const CommGraph original = random_graph(seed);
    std::stringstream buffer;
    write_graph(buffer, original);
    const auto loaded = read_graph(buffer);
    ASSERT_TRUE(loaded.has_value()) << "seed " << seed;
    expect_graphs_equal(original, *loaded);
  }
}

TEST(GraphSerialize, RoundTripsEmptyGraph) {
  std::stringstream buffer;
  write_graph(buffer, CommGraph{});
  const auto loaded = read_graph(buffer);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->node_count(), 0u);
  EXPECT_EQ(loaded->edge_count(), 0u);
}

TEST(GraphSerialize, PreservesCollapsedNode) {
  CommGraph g(TimeWindow::hour(0));
  const NodeId a = g.add_node(NodeKey::for_ip(IpAddr(1u)));
  const NodeId other = g.add_node(NodeKey::collapsed());
  g.note_collapsed_members(other, 42);
  g.add_edge_volume(a, other, 100, 0, 1, 0, 1, 1);
  std::stringstream buffer;
  write_graph(buffer, g);
  const auto loaded = read_graph(buffer);
  ASSERT_TRUE(loaded.has_value());
  const auto found = loaded->find_node(NodeKey::collapsed());
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(loaded->node_stats(*found).collapsed_members, 42u);
}

TEST(GraphSerialize, RejectsCorruptInput) {
  const CommGraph g = random_graph(7, 5, 6);
  std::stringstream buffer;
  write_graph(buffer, g);
  const std::string text = buffer.str();

  {
    std::stringstream wrong_magic("ccgraph-v9 0 60 0 0\n");
    EXPECT_FALSE(read_graph(wrong_magic).has_value());
  }
  {
    std::stringstream truncated(text.substr(0, text.size() / 2));
    EXPECT_FALSE(read_graph(truncated).has_value());
  }
  {
    std::stringstream empty("");
    EXPECT_FALSE(read_graph(empty).has_value());
  }
  {
    // Edge referencing an out-of-range node.
    std::stringstream bad("ccgraph-v1 0 60 1 1\nn 1 -1 1 0\ne 0 5 1 1 1 1 1 1 0 0 -1\n");
    EXPECT_FALSE(read_graph(bad).has_value());
  }
}

TEST(GraphSerialize, RejectsMalformedHeaderAndBody) {
  {
    // Header counts far beyond any plausible graph must be rejected before
    // the body is even touched (a hostile header should not drive loops).
    std::stringstream absurd_nodes("ccgraph-v1 0 60 99999999999 0\n");
    EXPECT_FALSE(read_graph(absurd_nodes).has_value());
    std::stringstream absurd_edges("ccgraph-v1 0 60 0 99999999999\n");
    EXPECT_FALSE(read_graph(absurd_edges).has_value());
  }
  {
    std::stringstream negative_window("ccgraph-v1 0 -60 0 0\n");
    EXPECT_FALSE(read_graph(negative_window).has_value());
  }
  {
    // Two node lines with the same key: the second would silently dedupe
    // and leave the body one line long vs the header.
    std::stringstream dup_node(
        "ccgraph-v1 0 60 2 0\nn 1 -1 1 0\nn 1 -1 0 0\n");
    EXPECT_FALSE(read_graph(dup_node).has_value());
  }
  {
    // Two edge lines for the same pair: add_edge_volume would merge them
    // and double-count the traffic.
    std::stringstream dup_edge(
        "ccgraph-v1 0 60 2 2\nn 1 -1 1 0\nn 2 -1 1 0\n"
        "e 0 1 10 0 1 0 1 1 0 0 -1\ne 0 1 10 0 1 0 1 1 0 0 -1\n");
    EXPECT_FALSE(read_graph(dup_edge).has_value());
  }
  {
    std::stringstream bad_port("ccgraph-v1 0 60 1 0\nn 1 70000 1 0\n");
    EXPECT_FALSE(read_graph(bad_port).has_value());
    std::stringstream neg_port("ccgraph-v1 0 60 1 0\nn 1 -2 1 0\n");
    EXPECT_FALSE(read_graph(neg_port).has_value());
  }
  {
    std::stringstream bad_monitored("ccgraph-v1 0 60 1 0\nn 1 -1 2 0\n");
    EXPECT_FALSE(read_graph(bad_monitored).has_value());
  }
  {
    std::stringstream bad_hint(
        "ccgraph-v1 0 60 2 1\nn 1 -1 1 0\nn 2 -1 1 0\n"
        "e 0 1 10 0 1 0 1 1 0 0 70000\n");
    EXPECT_FALSE(read_graph(bad_hint).has_value());
  }
  {
    // A self-loop edge.
    std::stringstream self_loop(
        "ccgraph-v1 0 60 1 1\nn 1 -1 1 0\ne 0 0 1 1 1 1 1 1 0 0 -1\n");
    EXPECT_FALSE(read_graph(self_loop).has_value());
  }
}

TEST(PgmHeatmap, WritesValidHeader) {
  const CommGraph g = random_graph(9, 20, 50);
  std::stringstream out;
  ASSERT_TRUE(write_pgm_heatmap(out, g, 16));
  const std::string pgm = out.str();
  EXPECT_EQ(pgm.substr(0, 3), "P5\n");
  EXPECT_NE(pgm.find("16 16\n255\n"), std::string::npos);
  // Header + 16x16 payload bytes.
  const std::size_t header_end = pgm.find("255\n") + 4;
  EXPECT_EQ(pgm.size() - header_end, 16u * 16u);
}

TEST(PgmHeatmap, AlignsAcrossWindowsWithSameNodes) {
  // Identical graphs -> identical pixels (the Fig. 5 timelapse property).
  const CommGraph a = random_graph(11, 20, 40);
  const CommGraph b = random_graph(11, 20, 40);
  std::stringstream sa, sb;
  write_pgm_heatmap(sa, a, 12);
  write_pgm_heatmap(sb, b, 12);
  EXPECT_EQ(sa.str(), sb.str());
}

TEST(PgmHeatmap, HandlesEmptyGraph) {
  std::stringstream out;
  EXPECT_TRUE(write_pgm_heatmap(out, CommGraph{}, 8));
  EXPECT_EQ(out.str().substr(0, 3), "P5\n");
}

}  // namespace
}  // namespace ccg

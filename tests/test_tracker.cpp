#include "ccg/segmentation/tracker.hpp"

#include <gtest/gtest.h>

#include "ccg/common/expect.hpp"
#include "ccg/graph/builder.hpp"
#include "ccg/telemetry/collector.hpp"
#include "ccg/workload/driver.hpp"
#include "ccg/workload/presets.hpp"

namespace ccg {
namespace {

/// Streams the tiny cluster and yields one graph per hour.
struct HourlyGraphs {
  Cluster cluster;
  std::vector<CommGraph> graphs;

  explicit HourlyGraphs(int hours, double churn_per_hour = 0.0,
                        std::uint64_t seed = 77)
      : cluster([&] {
          auto spec = presets::tiny();
          for (auto& role : spec.roles) {
            if (!role.is_external) role.churn_per_hour = churn_per_hour;
          }
          return spec;
        }(), seed) {
    TelemetryHub hub(ProviderProfile::azure(), seed);
    SimulationDriver driver(cluster, hub);
    const auto ips = cluster.monitored_ips();
    GraphBuilder builder({.facet = GraphFacet::kIp, .window_minutes = 60},
                         {ips.begin(), ips.end()});
    hub.set_sink(&builder);
    for (int h = 0; h < hours; ++h) {
      driver.run(TimeWindow::hour(h));
      // Register any churn replacements as they appear.
      for (const IpAddr ip : cluster.monitored_ips()) hub.add_host(ip);
    }
    builder.flush();
    graphs = builder.take_graphs();
  }
};

TEST(SegmentTracker, FirstWindowIsAllNewWithoutChurnReported) {
  HourlyGraphs sim(1);
  SegmentTracker tracker;
  const auto t = tracker.observe(sim.graphs.at(0));
  EXPECT_EQ(t.matched_segments, 0u);
  EXPECT_EQ(t.new_segments, 0u);  // first window: baseline, not "new"
  EXPECT_EQ(t.tracked_nodes, 0u);
  EXPECT_EQ(t.label_churn, 0.0);
  EXPECT_GT(tracker.next_stable_id(), 0u);
  EXPECT_FALSE(tracker.assignment().empty());
}

TEST(SegmentTracker, StableAcrossQuietHours) {
  HourlyGraphs sim(3);
  SegmentTracker tracker;
  tracker.observe(sim.graphs.at(0));
  const auto id_count = tracker.next_stable_id();
  const auto before = tracker.assignment();

  for (std::size_t h = 1; h < sim.graphs.size(); ++h) {
    const auto t = tracker.observe(sim.graphs.at(h));
    EXPECT_EQ(t.new_segments, 0u) << "hour " << h;
    EXPECT_EQ(t.retired_segments, 0u);
    EXPECT_EQ(t.relabeled_nodes, 0u);
    EXPECT_GT(t.tracked_nodes, 0u);
  }
  EXPECT_EQ(tracker.next_stable_id(), id_count) << "no identity inflation";
  for (const auto& [ip, stable] : before) {
    EXPECT_EQ(tracker.assignment().at(ip), stable);
  }
}

TEST(SegmentTracker, ChurnedReplacementsInheritTheSegmentIdentity) {
  HourlyGraphs sim(3, /*churn_per_hour=*/0.4);
  SegmentTracker tracker;
  tracker.observe(sim.graphs.at(0));
  const auto id_count_after_first = tracker.next_stable_id();
  for (std::size_t h = 1; h < sim.graphs.size(); ++h) {
    const auto t = tracker.observe(sim.graphs.at(h));
    // Replacement IPs join existing segments; identities persist.
    EXPECT_LE(t.new_segments, 1u) << t.to_string();
    EXPECT_LE(t.label_churn, 0.35) << t.to_string();
  }
  EXPECT_LE(tracker.next_stable_id(), id_count_after_first + 2);
}

TEST(SegmentTracker, ValidatesOverlapThreshold) {
  EXPECT_THROW(SegmentTracker(SegmentationMethod::kJaccardLouvain, {}, 0.0),
               ContractViolation);
  EXPECT_THROW(SegmentTracker(SegmentationMethod::kJaccardLouvain, {}, 1.5),
               ContractViolation);
}

TEST(SegmentTransition, RendersSummary) {
  SegmentTransition t;
  t.matched_segments = 3;
  t.tracked_nodes = 10;
  t.relabeled_nodes = 1;
  t.label_churn = 0.1;
  EXPECT_NE(t.to_string().find("3 matched"), std::string::npos);
  EXPECT_NE(t.to_string().find("10.0%"), std::string::npos);
}

}  // namespace
}  // namespace ccg

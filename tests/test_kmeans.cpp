#include "ccg/linalg/kmeans.hpp"

#include <gtest/gtest.h>

#include "ccg/common/expect.hpp"
#include "ccg/common/rng.hpp"

namespace ccg {
namespace {

/// Three well-separated 2-D blobs.
Matrix three_blobs(std::size_t per_blob, std::uint64_t seed) {
  Rng rng(seed);
  const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  Matrix data(per_blob * 3, 2);
  for (std::size_t b = 0; b < 3; ++b) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      data(b * per_blob + i, 0) = centers[b][0] + rng.normal(0, 0.5);
      data(b * per_blob + i, 1) = centers[b][1] + rng.normal(0, 0.5);
    }
  }
  return data;
}

TEST(KMeans, RecoversSeparatedBlobs) {
  const Matrix data = three_blobs(50, 7);
  const auto result = kmeans(data, 3);
  EXPECT_TRUE(result.converged);
  // All points of one blob share a label; blobs get distinct labels.
  for (std::size_t b = 0; b < 3; ++b) {
    const auto label = result.labels[b * 50];
    for (std::size_t i = 1; i < 50; ++i) {
      EXPECT_EQ(result.labels[b * 50 + i], label) << "blob " << b;
    }
  }
  EXPECT_NE(result.labels[0], result.labels[50]);
  EXPECT_NE(result.labels[50], result.labels[100]);
  EXPECT_NE(result.labels[0], result.labels[100]);
  EXPECT_LT(result.inertia, 150 * 2 * 1.0);  // ~ n * dims * var
}

TEST(KMeans, KOneGivesGrandMeanCentroid) {
  const Matrix data = three_blobs(20, 9);
  const auto result = kmeans(data, 1);
  for (const auto label : result.labels) EXPECT_EQ(label, 0u);
  // Centroid ~ mean of the three centers = (10/3, 10/3).
  EXPECT_NEAR(result.centroids(0, 0), 10.0 / 3.0, 0.5);
  EXPECT_NEAR(result.centroids(0, 1), 10.0 / 3.0, 0.5);
}

TEST(KMeans, DeterministicForSeed) {
  const Matrix data = three_blobs(30, 11);
  const auto a = kmeans(data, 3, {.seed = 5});
  const auto b = kmeans(data, 3, {.seed = 5});
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(KMeans, InertiaDecreasesWithK) {
  const Matrix data = three_blobs(30, 13);
  double prev = kmeans(data, 1).inertia;
  for (const std::size_t k : {2u, 3u, 6u}) {
    const double inertia = kmeans(data, k).inertia;
    EXPECT_LE(inertia, prev + 1e-9);
    prev = inertia;
  }
}

TEST(KMeans, ValidatesArguments) {
  const Matrix data = three_blobs(5, 15);
  EXPECT_THROW(kmeans(data, 0), ContractViolation);
  EXPECT_THROW(kmeans(data, 16), ContractViolation);
  EXPECT_THROW(kmeans(Matrix{}, 1), ContractViolation);
}

TEST(KMeans, IdenticalPointsDoNotCrash) {
  Matrix data(10, 2);
  for (std::size_t r = 0; r < 10; ++r) {
    data(r, 0) = 1.0;
    data(r, 1) = 2.0;
  }
  const auto result = kmeans(data, 3);
  EXPECT_EQ(result.labels.size(), 10u);
  EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

TEST(StandardizeColumns, ZeroMeanUnitVariance) {
  Rng rng(17);
  Matrix data(200, 3);
  for (std::size_t r = 0; r < 200; ++r) {
    data(r, 0) = rng.normal(100.0, 5.0);
    data(r, 1) = rng.normal(-2.0, 0.1);
    data(r, 2) = 7.0;  // constant column
  }
  const Matrix z = standardize_columns(data);
  for (std::size_t c = 0; c < 2; ++c) {
    double mean = 0.0, var = 0.0;
    for (std::size_t r = 0; r < 200; ++r) mean += z(r, c);
    mean /= 200;
    for (std::size_t r = 0; r < 200; ++r) var += (z(r, c) - mean) * (z(r, c) - mean);
    var /= 200;
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(var, 1.0, 1e-9);
  }
  for (std::size_t r = 0; r < 200; ++r) EXPECT_EQ(z(r, 2), 0.0);
}

}  // namespace
}  // namespace ccg

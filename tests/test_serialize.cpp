#include "ccg/telemetry/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ccg/common/rng.hpp"

namespace ccg {
namespace {

ConnectionSummary sample_record() {
  return ConnectionSummary{
      .time = MinuteBucket(125),
      .flow = FlowKey{.local_ip = *IpAddr::parse("10.0.1.5"),
                      .local_port = 44123,
                      .remote_ip = *IpAddr::parse("10.0.2.9"),
                      .remote_port = 443,
                      .protocol = Protocol::kTcp},
      .counters = TrafficCounters{.packets_sent = 12, .packets_rcvd = 20,
                                  .bytes_sent = 3400, .bytes_rcvd = 128000}};
}

std::vector<ConnectionSummary> random_batch(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<ConnectionSummary> batch;
  std::int64_t minute = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.chance(0.1)) ++minute;
    const Protocol proto = rng.chance(0.8)   ? Protocol::kTcp
                           : rng.chance(0.5) ? Protocol::kUdp
                                             : Protocol::kIcmp;
    batch.push_back(ConnectionSummary{
        .time = MinuteBucket(minute),
        .flow = FlowKey{.local_ip = IpAddr(static_cast<std::uint32_t>(rng.next())),
                        .local_port = static_cast<std::uint16_t>(rng.uniform(65536)),
                        .remote_ip = IpAddr(static_cast<std::uint32_t>(rng.next())),
                        .remote_port = static_cast<std::uint16_t>(rng.uniform(65536)),
                        .protocol = proto},
        .counters = TrafficCounters{.packets_sent = rng.uniform(1 << 20),
                                    .packets_rcvd = rng.uniform(1 << 20),
                                    .bytes_sent = rng.next() % (1ull << 40),
                                    .bytes_rcvd = rng.next() % (1ull << 40)},
        .initiator = static_cast<Initiator>(rng.uniform(3))});
  }
  return batch;
}

TEST(CsvSerialize, RoundTripsSingleRecord) {
  const auto rec = sample_record();
  const auto parsed = from_csv(to_csv(rec));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, rec);
}

TEST(CsvSerialize, HeaderMatchesTable2Schema) {
  const std::string header = csv_header();
  for (const char* column :
       {"time_minute", "local_ip", "local_port", "remote_ip", "remote_port",
        "packets_sent", "packets_rcvd", "bytes_sent", "bytes_rcvd",
        "initiator"}) {
    EXPECT_NE(header.find(column), std::string::npos) << column;
  }
}

TEST(CsvSerialize, RejectsMalformedRows) {
  EXPECT_FALSE(from_csv("").has_value());
  EXPECT_FALSE(from_csv("1,2,3").has_value());
  // Sanity: this well-formed row parses...
  EXPECT_TRUE(from_csv("0,6,10.0.0.1,1,10.0.0.2,2,1,1,1,1,0").has_value());
  // ...and each corruption is rejected.
  EXPECT_FALSE(from_csv("x,6,10.0.0.1,1,10.0.0.2,2,1,1,1,1,0").has_value());
  EXPECT_FALSE(from_csv("0,6,999.0.0.1,1,10.0.0.2,2,1,1,1,1,0").has_value());
  EXPECT_FALSE(from_csv("0,6,10.0.0.1,70000,10.0.0.2,2,1,1,1,1,0").has_value());
  EXPECT_FALSE(from_csv("0,5,10.0.0.1,1,10.0.0.2,2,1,1,1,1,0").has_value());  // bad proto
  EXPECT_FALSE(from_csv("0,6,10.0.0.1,1,10.0.0.2,2,1,1,1,-5,0").has_value());
  EXPECT_FALSE(from_csv("0,6,10.0.0.1,1,10.0.0.2,2,1,1,1,1,3").has_value());  // bad initiator
  EXPECT_FALSE(from_csv("0,6,10.0.0.1,1,10.0.0.2,2,1,1,1,1").has_value());  // missing field
}

TEST(CsvSerialize, StreamRoundTripWithHeaderAndBadRows) {
  const auto batch = random_batch(200, 5);
  std::ostringstream out;
  write_csv(out, batch);
  std::string text = out.str();
  text += "this,is,not,a,record\n";

  std::istringstream in(text);
  std::size_t dropped = 0;
  const auto parsed = read_csv(in, &dropped);
  EXPECT_EQ(parsed, batch);
  EXPECT_EQ(dropped, 1u);
}

TEST(BinarySerialize, RoundTripsEmptyBatch) {
  const auto buf = encode_binary({});
  const auto decoded = decode_binary(buf);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->empty());
}

TEST(BinarySerialize, RoundTripsRandomBatches) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const auto batch = random_batch(500, seed);
    const auto decoded = decode_binary(encode_binary(batch));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, batch);
  }
}

TEST(BinarySerialize, HandlesNegativeTimeDeltas) {
  auto batch = random_batch(10, 9);
  batch[5].time = MinuteBucket(-100);  // unsorted batch: delta goes negative
  const auto decoded = decode_binary(encode_binary(batch));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, batch);
}

TEST(BinarySerialize, DetectsTruncation) {
  auto buf = encode_binary(random_batch(50, 11));
  for (const std::size_t cut : {buf.size() - 1, buf.size() / 2, std::size_t{1}}) {
    std::vector<std::uint8_t> truncated(buf.begin(),
                                        buf.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(decode_binary(truncated).has_value()) << "cut " << cut;
  }
}

TEST(BinarySerialize, DetectsTrailingGarbage) {
  auto buf = encode_binary(random_batch(20, 13));
  buf.push_back(0x00);
  EXPECT_FALSE(decode_binary(buf).has_value());
}

TEST(BinarySerialize, CompactsBetterThanCsv) {
  const auto batch = random_batch(1000, 17);
  std::ostringstream csv;
  write_csv(csv, batch);
  const auto binary = encode_binary(batch);
  EXPECT_LT(binary.size(), csv.str().size());
}

}  // namespace
}  // namespace ccg

#include "ccg/common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ccg/common/expect.hpp"
#include "ccg/common/rng.hpp"

namespace ccg {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(3.14);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.mean(), 3.14);
}

TEST(RunningStats, MatchesBatchComputationOnRandomData) {
  Rng rng(41);
  RunningStats s;
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.normal(10.0, 3.0);
    xs.push_back(x);
    s.add(x);
  }
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-6);
}

TEST(PercentileSketch, InterpolatesOrderStatistics) {
  PercentileSketch p;
  for (const double x : {10.0, 20.0, 30.0, 40.0}) p.add(x);
  EXPECT_DOUBLE_EQ(p.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(p.quantile(1.0), 40.0);
  EXPECT_DOUBLE_EQ(p.quantile(0.5), 25.0);
  EXPECT_DOUBLE_EQ(p.quantile(1.0 / 3.0), 20.0);
}

TEST(PercentileSketch, RequiresSamplesAndValidQ) {
  PercentileSketch p;
  EXPECT_THROW(p.quantile(0.5), ContractViolation);
  p.add(1.0);
  EXPECT_THROW(p.quantile(1.5), ContractViolation);
  EXPECT_THROW(p.quantile(-0.1), ContractViolation);
  EXPECT_DOUBLE_EQ(p.quantile(0.99), 1.0);
}

TEST(PercentileSketch, HandlesInsertAfterQuery) {
  PercentileSketch p;
  p.add(5.0);
  EXPECT_DOUBLE_EQ(p.quantile(0.5), 5.0);
  p.add(1.0);
  p.add(9.0);
  EXPECT_DOUBLE_EQ(p.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(p.quantile(0.0), 1.0);
}

TEST(Log2Histogram, BucketsPowersOfTwo) {
  Log2Histogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(4);
  h.add(1023);
  h.add(1024);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.bucket_count(0), 2u);  // 0 and 1
  EXPECT_EQ(h.bucket_count(1), 2u);  // 2, 3
  EXPECT_EQ(h.bucket_count(2), 1u);  // 4
  EXPECT_EQ(h.bucket_count(9), 1u);  // 1023
  EXPECT_EQ(h.bucket_count(10), 1u); // 1024
  EXPECT_EQ(h.bucket_count(20), 0u);
  EXPECT_EQ(h.max_bucket(), 10);
}

TEST(Log2Histogram, RendersWithoutCrashing) {
  Log2Histogram h;
  EXPECT_EQ(h.to_string(), "(empty histogram)\n");
  for (std::uint64_t i = 0; i < 100; ++i) h.add(i);
  EXPECT_FALSE(h.to_string().empty());
}

TEST(TrafficCcdf, EqualWeightsDecayLinearly) {
  auto curve = traffic_concentration_ccdf({1.0, 1.0, 1.0, 1.0});
  ASSERT_EQ(curve.size(), 5u);
  EXPECT_DOUBLE_EQ(curve[0].ccdf, 1.0);
  EXPECT_NEAR(curve[2].ccdf, 0.5, 1e-12);   // half the nodes -> half the bytes
  EXPECT_NEAR(curve[4].ccdf, 0.0, 1e-12);
}

TEST(TrafficCcdf, ConcentratedWeightsDropFast) {
  // One elephant and 9 mice: the first node covers ~91% of traffic.
  std::vector<double> weights{1000.0};
  for (int i = 0; i < 9; ++i) weights.push_back(10.0);
  auto curve = traffic_concentration_ccdf(weights);
  EXPECT_NEAR(curve[1].fraction_of_nodes, 0.1, 1e-12);
  EXPECT_LT(curve[1].ccdf, 0.1);
}

TEST(TrafficCcdf, HandlesDegenerateInputs) {
  EXPECT_TRUE(traffic_concentration_ccdf({}).empty());
  EXPECT_TRUE(traffic_concentration_ccdf({0.0, 0.0}).empty());
}

TEST(Gini, KnownValues) {
  EXPECT_DOUBLE_EQ(gini_coefficient({}), 0.0);
  EXPECT_DOUBLE_EQ(gini_coefficient({5.0}), 0.0);
  EXPECT_NEAR(gini_coefficient({1.0, 1.0, 1.0, 1.0}), 0.0, 1e-12);
  // All weight on one of n: gini -> (n-1)/n.
  EXPECT_NEAR(gini_coefficient({0.0, 0.0, 0.0, 10.0}), 0.75, 1e-12);
}

TEST(Gini, MonotoneInConcentration) {
  const double even = gini_coefficient({5, 5, 5, 5, 5, 5, 5, 5});
  const double mild = gini_coefficient({1, 2, 3, 4, 5, 6, 7, 12});
  const double harsh = gini_coefficient({0, 0, 0, 0, 1, 1, 2, 36});
  EXPECT_LT(even, mild);
  EXPECT_LT(mild, harsh);
}

}  // namespace
}  // namespace ccg

#include "ccg/policy/blast_radius.hpp"

#include <gtest/gtest.h>

namespace ccg {
namespace {

/// web x 10 -> api x 5 -> db x 2, isolated batch x 3.
struct Fixture {
  SegmentMap segments;
  ReachabilityPolicy policy;
  Fixture() {
    std::uint32_t ip = 0x0A000001;
    for (int i = 0; i < 10; ++i) segments.assign(IpAddr(ip++), 0);
    for (int i = 0; i < 5; ++i) segments.assign(IpAddr(ip++), 1);
    for (int i = 0; i < 2; ++i) segments.assign(IpAddr(ip++), 2);
    for (int i = 0; i < 3; ++i) segments.assign(IpAddr(ip++), 3);
    policy.allow({.from_segment = 0, .to_segment = 1, .server_port = 8080});
    policy.allow({.from_segment = 1, .to_segment = 2, .server_port = 5432});
  }
};

TEST(BlastRadius, TransitiveReachFollowsChain) {
  Fixture fx;
  const auto reach = transitive_reach_by_segment(fx.segments, fx.policy);
  ASSERT_EQ(reach.size(), 4u);
  EXPECT_EQ(reach[0], 16u);  // web: 9 peers + 5 api + 2 db
  EXPECT_EQ(reach[1], 6u);   // api: 4 peers + 2 db
  EXPECT_EQ(reach[2], 1u);   // db: 1 peer
  EXPECT_EQ(reach[3], 2u);   // batch: 2 peers, nothing else
}

TEST(BlastRadius, ReportAggregatesCorrectly) {
  Fixture fx;
  const auto report = blast_radius(fx.segments, fx.policy);
  EXPECT_EQ(report.resources, 20u);
  EXPECT_EQ(report.flat_radius, 19u);
  EXPECT_EQ(report.max_transitive, 16u);
  // mean = (10*16 + 5*6 + 2*1 + 3*2) / 20 = 198/20.
  EXPECT_NEAR(report.mean_transitive, 9.9, 1e-9);
  EXPECT_NEAR(report.reduction_factor, 19.0 / 9.9, 1e-9);
  EXPECT_GT(report.reduction_factor, 1.0);
}

TEST(BlastRadius, DirectRadiusIsOneHop) {
  Fixture fx;
  const auto report = blast_radius(fx.segments, fx.policy);
  // web direct: 9 peers + 5 api = 14 (not the db).
  EXPECT_EQ(report.max_direct, 14u);
  EXPECT_LE(report.mean_direct, report.mean_transitive + 1e-9);
}

TEST(BlastRadius, AllowAllMatchesFlatNetwork) {
  Fixture fx;
  ReachabilityPolicy allow_all;
  for (std::uint32_t s = 0; s < 4; ++s) {
    for (std::uint32_t t = 0; t < 4; ++t) {
      allow_all.allow({.from_segment = s, .to_segment = t, .server_port = 0});
    }
  }
  const auto report = blast_radius(fx.segments, allow_all);
  EXPECT_NEAR(report.mean_transitive, 19.0, 1e-9);
  EXPECT_NEAR(report.reduction_factor, 1.0, 1e-9);
}

TEST(BlastRadius, EmptyPolicyConfinesToOwnSegment) {
  Fixture fx;
  const auto report = blast_radius(fx.segments, ReachabilityPolicy{});
  // Each resource reaches only its segment peers.
  EXPECT_EQ(report.max_transitive, 9u);  // inside web
  EXPECT_GT(report.reduction_factor, 2.0);
}

TEST(BlastRadius, CyclesDoNotDoubleCount) {
  SegmentMap segments;
  segments.assign(IpAddr(1u), 0);
  segments.assign(IpAddr(2u), 1);
  ReachabilityPolicy policy;
  policy.allow({.from_segment = 0, .to_segment = 1, .server_port = 1});
  policy.allow({.from_segment = 1, .to_segment = 0, .server_port = 2});
  const auto reach = transitive_reach_by_segment(segments, policy);
  EXPECT_EQ(reach[0], 1u);
  EXPECT_EQ(reach[1], 1u);
}

TEST(BlastRadius, EmptySegmentation) {
  const auto report = blast_radius(SegmentMap{}, ReachabilityPolicy{});
  EXPECT_EQ(report.resources, 0u);
  EXPECT_EQ(report.flat_radius, 0u);
}

}  // namespace
}  // namespace ccg

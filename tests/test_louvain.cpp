#include "ccg/segmentation/louvain.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "ccg/common/expect.hpp"
#include "ccg/common/rng.hpp"

namespace ccg {
namespace {

/// Two k-cliques joined by a single weak bridge.
WeightedGraph two_cliques(std::size_t k, double internal_weight = 1.0,
                          double bridge_weight = 0.1) {
  WeightedGraph g(2 * k);
  for (std::uint32_t offset : {0u, static_cast<std::uint32_t>(k)}) {
    for (std::uint32_t i = 0; i < k; ++i) {
      for (std::uint32_t j = i + 1; j < k; ++j) {
        g.add_edge(offset + i, offset + j, internal_weight);
      }
    }
  }
  g.add_edge(0, static_cast<std::uint32_t>(k), bridge_weight);
  return g;
}

TEST(WeightedGraph, TracksWeightsAndStrength) {
  WeightedGraph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 3.0);
  g.add_edge(0, 1, 0.0);  // zero weights dropped
  EXPECT_DOUBLE_EQ(g.total_weight(), 5.0);
  EXPECT_DOUBLE_EQ(g.strength(1), 5.0);
  EXPECT_DOUBLE_EQ(g.strength(0), 2.0);
  EXPECT_THROW(g.add_edge(0, 0, 1.0), ContractViolation);
  EXPECT_THROW(g.add_edge(0, 5, 1.0), ContractViolation);
  EXPECT_THROW(g.add_edge(0, 1, -1.0), ContractViolation);
}

TEST(Louvain, SeparatesTwoCliques) {
  const auto g = two_cliques(8);
  const auto result = louvain_cluster(g);
  EXPECT_EQ(result.community_count, 2u);
  // All of clique 1 together, all of clique 2 together, and apart.
  for (std::uint32_t i = 1; i < 8; ++i) EXPECT_EQ(result.labels[i], result.labels[0]);
  for (std::uint32_t i = 9; i < 16; ++i) EXPECT_EQ(result.labels[i], result.labels[8]);
  EXPECT_NE(result.labels[0], result.labels[8]);
  EXPECT_GT(result.modularity, 0.3);
}

TEST(Louvain, FourCliqueRing) {
  // Four 6-cliques in a ring with weak bridges: must find 4 communities.
  constexpr std::size_t k = 6, groups = 4;
  WeightedGraph g(k * groups);
  for (std::uint32_t group = 0; group < groups; ++group) {
    const std::uint32_t base = group * k;
    for (std::uint32_t i = 0; i < k; ++i) {
      for (std::uint32_t j = i + 1; j < k; ++j) {
        g.add_edge(base + i, base + j, 1.0);
      }
    }
    g.add_edge(base, ((group + 1) % groups) * k, 0.05);
  }
  const auto result = louvain_cluster(g);
  EXPECT_EQ(result.community_count, 4u);
}

TEST(Louvain, SingletonAndEmptyGraphs) {
  WeightedGraph empty(0);
  const auto r0 = louvain_cluster(empty);
  EXPECT_EQ(r0.community_count, 0u);

  WeightedGraph isolated(3);  // no edges
  const auto r1 = louvain_cluster(isolated);
  EXPECT_EQ(r1.labels.size(), 3u);
  EXPECT_EQ(r1.community_count, 3u);  // nothing merges without edges
}

TEST(Louvain, DeterministicForSeed) {
  const auto g = two_cliques(10);
  const auto a = louvain_cluster(g, {.seed = 5});
  const auto b = louvain_cluster(g, {.seed = 5});
  EXPECT_EQ(a.labels, b.labels);
}

TEST(Louvain, HigherResolutionGivesMoreCommunities) {
  // A uniform random graph: resolution controls fragmentation.
  Rng rng(77);
  WeightedGraph g(60);
  for (int e = 0; e < 400; ++e) {
    const auto a = static_cast<std::uint32_t>(rng.uniform(60));
    const auto b = static_cast<std::uint32_t>(rng.uniform(60));
    if (a != b) g.add_edge(a, b, 1.0);
  }
  const auto low = louvain_cluster(g, {.resolution = 0.5, .seed = 5});
  const auto high = louvain_cluster(g, {.resolution = 3.0, .seed = 5});
  EXPECT_LE(low.community_count, high.community_count);
}

TEST(Modularity, PerfectSplitBeatsMergedLabels) {
  const auto g = two_cliques(8);
  std::vector<std::uint32_t> split(16, 0);
  for (std::size_t i = 8; i < 16; ++i) split[i] = 1;
  std::vector<std::uint32_t> merged(16, 0);
  EXPECT_GT(modularity(g, split), modularity(g, merged));
  EXPECT_NEAR(modularity(g, merged), 0.0, 1e-12);
}

TEST(Modularity, LabelSizeMustMatch) {
  const auto g = two_cliques(4);
  EXPECT_THROW(modularity(g, std::vector<std::uint32_t>(3, 0)), ContractViolation);
}

TEST(Louvain, LabelsAreDense) {
  const auto g = two_cliques(5);
  const auto result = louvain_cluster(g);
  std::unordered_set<std::uint32_t> labels(result.labels.begin(), result.labels.end());
  EXPECT_EQ(labels.size(), result.community_count);
  for (const auto l : labels) EXPECT_LT(l, result.community_count);
}

}  // namespace
}  // namespace ccg

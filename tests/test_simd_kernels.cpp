// Cross-TIER determinism of the ported analysis kernels: every simd tier,
// at every thread count, must produce BYTE-identical results — the same
// contract test_parallel_kernels.cpp enforces across threads, extended to
// the {scalar, simd} × {1, 2, 4} grid. All comparisons are exact double
// equality, not tolerance.
//
// On a host without a vector unit the tier list collapses to {scalar} and
// the grid still runs, so the test is portable.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "ccg/common/rng.hpp"
#include "ccg/graph/csr.hpp"
#include "ccg/linalg/eigen.hpp"
#include "ccg/linalg/kmeans.hpp"
#include "ccg/linalg/pca.hpp"
#include "ccg/parallel/parallel.hpp"
#include "ccg/segmentation/auto_segment.hpp"
#include "ccg/segmentation/similarity.hpp"
#include "ccg/segmentation/simrank.hpp"
#include "ccg/simd/simd.hpp"

namespace ccg {
namespace {

struct GridGuard {
  ~GridGuard() {
    parallel::set_thread_count(0);
    simd::set_tier("auto");
  }
};

std::vector<std::string> selectable_tiers() {
  simd::set_tier("auto");
  std::vector<std::string> tiers{"scalar"};
  const std::string best = simd::tier_name(simd::active_tier());
  if (best != "scalar") tiers.push_back(best);
  return tiers;
}

template <typename Fn>
auto at_grid(const std::string& tier, int threads, Fn&& fn) {
  simd::set_tier(tier);
  parallel::set_thread_count(threads);
  auto result = fn();
  parallel::set_thread_count(0);
  simd::set_tier("auto");
  return result;
}

/// Runs `fn` at (scalar, 1 thread) for the reference, then across the full
/// tier × thread grid, demanding exact equality everywhere.
template <typename Fn>
void expect_grid_identical(Fn&& fn, const std::string& what) {
  const std::vector<std::string> tiers = selectable_tiers();
  const auto reference = at_grid("scalar", 1, fn);
  for (const std::string& tier : tiers) {
    for (const int threads : {1, 2, 4}) {
      ASSERT_EQ(reference, at_grid(tier, threads, fn))
          << what << " diverged at tier=" << tier << " threads=" << threads;
    }
  }
}

/// Same fixture as test_parallel_kernels.cpp: role-structured graph with
/// shared-neighbor signal plus noise edges.
CommGraph role_graph(std::size_t roles, std::size_t per_role, std::uint64_t seed) {
  CommGraph g;
  Rng rng(seed);
  std::vector<std::vector<NodeId>> members(roles);
  for (std::size_t r = 0; r < roles; ++r) {
    for (std::size_t i = 0; i < per_role; ++i) {
      members[r].push_back(g.add_node(
          NodeKey::for_ip(IpAddr(static_cast<std::uint32_t>(r * 1000 + i + 1)))));
    }
  }
  for (std::size_t r = 0; r + 1 < roles; ++r) {
    for (const NodeId a : members[r]) {
      for (const NodeId b : members[r + 1]) {
        if (!rng.chance(0.6)) continue;
        const auto bytes = 500 + rng.uniform(100000);
        g.add_edge_volume(a, b, bytes, bytes / 3, 2, 1, 1, 2, /*client_ab=*/1,
                          /*client_ba=*/0,
                          /*port=*/static_cast<std::int32_t>(5000 + r));
      }
    }
  }
  const std::size_t n = g.node_count();
  for (std::size_t i = 0; i < n; ++i) {
    const auto a = static_cast<NodeId>(rng.uniform(n));
    const auto b = static_cast<NodeId>(rng.uniform(n));
    if (a == b) continue;
    g.add_edge_volume(a, b, 100 + rng.uniform(5000), 50, 1, 1, 1, 1);
  }
  return g;
}

using EdgeMap = std::map<std::pair<std::uint32_t, std::uint32_t>, double>;

EdgeMap edge_map(const WeightedGraph& g) {
  EdgeMap out;
  for (std::uint32_t a = 0; a < g.size(); ++a) {
    for (const auto& [b, w] : g.neighbors(a)) {
      if (a < b) out[{a, b}] += w;
    }
  }
  return out;
}

Matrix random_symmetric(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = rng.normal();
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  return m;
}

TEST(SimdKernels, SimilarityCliqueIdenticalAcrossTierGrid) {
  GridGuard guard;
  const CommGraph g = role_graph(5, 28, 7);  // 140 nodes
  for (const SimilarityKind kind :
       {SimilarityKind::kJaccard, SimilarityKind::kWeightedJaccard,
        SimilarityKind::kCosine}) {
    const SimilarityOptions options{.kind = kind};
    expect_grid_identical(
        [&] { return edge_map(similarity_clique(g, options)); },
        "similarity kind=" + std::to_string(static_cast<int>(kind)));
  }
}

TEST(SimdKernels, SimilarityLshPathIdenticalAcrossTierGrid) {
  GridGuard guard;
  const CommGraph g = role_graph(5, 28, 11);
  SimilarityOptions options;
  options.exact_pair_limit = 16;  // force the MinHash/LSH path
  const auto run = [&] { return edge_map(similarity_clique(g, options)); };
  ASSERT_FALSE(at_grid("scalar", 1, run).empty());
  expect_grid_identical(run, "similarity lsh");
}

TEST(SimdKernels, SimRankIdenticalAcrossTierGrid) {
  GridGuard guard;
  const CommGraph g = role_graph(4, 22, 13);  // 88 nodes
  for (const bool plus_plus : {false, true}) {
    const SimRankOptions options{.iterations = 3, .plus_plus = plus_plus};
    expect_grid_identical([&] { return simrank_scores(g, options); },
                          std::string("simrank plus_plus=") +
                              (plus_plus ? "true" : "false"));
  }
}

TEST(SimdKernels, JacobiEigenIdenticalAcrossTierGrid) {
  GridGuard guard;
  // 300 >= the Jacobi parallel cutoff (256), so threads>1 exercises the
  // pooled rotation path in combination with each tier.
  const Matrix m = random_symmetric(300, 41);
  expect_grid_identical(
      [&] {
        const EigenDecomposition d = jacobi_eigen(m);
        return std::make_pair(d.values, d.vectors.data());
      },
      "jacobi 300");
}

TEST(SimdKernels, PowerIterationIdenticalAcrossTierGrid) {
  GridGuard guard;
  const Matrix m = random_symmetric(150, 47);
  expect_grid_identical(
      [&] {
        const PowerIterationResult r = power_iteration(m);
        return std::make_tuple(r.value, r.vector, r.iterations);
      },
      "power iteration 150");
}

TEST(SimdKernels, PcaIdenticalAcrossTierGrid) {
  GridGuard guard;
  const Matrix m = random_symmetric(96, 43);
  expect_grid_identical(
      [&] {
        const PcaSummary pca(m);
        return std::make_pair(pca.error_curve(15), pca.reconstruct(8).data());
      },
      "pca");
}

TEST(SimdKernels, KMeansIdenticalAcrossTierGrid) {
  GridGuard guard;
  Rng rng(51);
  Matrix data(300, 8);
  for (std::size_t r = 0; r < data.rows(); ++r) {
    const double center = static_cast<double>(r % 4) * 10.0;
    for (std::size_t c = 0; c < data.cols(); ++c) {
      data(r, c) = center + rng.normal();
    }
  }
  expect_grid_identical(
      [&] {
        const KMeansResult r = kmeans(data, 4, {.seed = 3});
        return std::make_tuple(r.labels, r.centroids.data(), r.inertia);
      },
      "kmeans");
}

/// The CSR-sharing overloads are pure plumbing: handing the kernels a
/// prebuilt CsrAdjacency must not change a single bit relative to the
/// convenience overloads that build their own.
TEST(SimdKernels, CsrSharingOverloadsMatchConvenienceOverloads) {
  GridGuard guard;
  const CommGraph g = role_graph(4, 20, 17);
  const CsrAdjacency csr(g);

  EXPECT_EQ(edge_map(similarity_clique(g, csr)), edge_map(similarity_clique(g)));
  const SimRankOptions sr{.iterations = 3};
  EXPECT_EQ(simrank_scores(g, csr, sr), simrank_scores(g, sr));
  for (const SegmentationMethod method :
       {SegmentationMethod::kJaccardLouvain, SegmentationMethod::kSimRank}) {
    const Segmentation with_csr = auto_segment(g, csr, method);
    const Segmentation without = auto_segment(g, method);
    EXPECT_EQ(with_csr.labels, without.labels);
    EXPECT_EQ(with_csr.segment_count, without.segment_count);
  }
}

}  // namespace
}  // namespace ccg

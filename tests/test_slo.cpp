// SloEvaluator: the deterministic breach/burn state machine behind the SLO
// watcher thread. Every test drives explicit inputs — no clocks, threads,
// or sleeps — which is the reason the evaluator is split from the watcher.
#include "ccg/obs/slo.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace ccg {
namespace {

constexpr std::uint64_t kSecond = 1'000'000'000ull;

obs::SloOptions tight_options() {
  obs::SloOptions options;
  options.window_lag_seconds = 5.0;
  options.max_stall_dumps = 0;
  options.max_net_events = 10;
  options.max_fallbacks = 25;
  options.burn_intervals = 3;
  return options;
}

/// Inputs representing a healthy interval at time `now`.
obs::SloInputs healthy(std::uint64_t now_ns) {
  obs::SloInputs inputs;
  inputs.now_ns = now_ns;
  inputs.window_seen = true;
  inputs.last_window_ns = now_ns;  // a window just landed
  return inputs;
}

TEST(SloEvaluator, FirstCallOnlyPrimesBaselines) {
  obs::SloEvaluator eval(tight_options());
  obs::SloInputs inputs = healthy(0);
  // Cumulative totals from a process that has been running a while: judging
  // them as one interval would fire spurious startup breaches.
  inputs.stall_dumps = 50;
  inputs.net_events = 1000;
  inputs.fallbacks = 500;
  EXPECT_TRUE(eval.evaluate(inputs).empty());

  // Second interval with no growth: still clean.
  inputs.now_ns = kSecond;
  inputs.last_window_ns = kSecond;
  EXPECT_TRUE(eval.evaluate(inputs).empty());
}

TEST(SloEvaluator, StallDeltaOverThresholdBreaches) {
  obs::SloEvaluator eval(tight_options());
  obs::SloInputs inputs = healthy(0);
  inputs.stall_dumps = 2;
  (void)eval.evaluate(inputs);  // prime

  inputs = healthy(kSecond);
  inputs.stall_dumps = 3;  // one new dump; max_stall_dumps = 0
  const auto breaches = eval.evaluate(inputs);
  ASSERT_EQ(breaches.size(), 1u);
  EXPECT_EQ(breaches[0].signal, "stall");
  EXPECT_DOUBLE_EQ(breaches[0].value, 1.0);
  EXPECT_DOUBLE_EQ(breaches[0].threshold, 0.0);
  EXPECT_EQ(breaches[0].consecutive, 1u);
  EXPECT_FALSE(breaches[0].sustained);
}

TEST(SloEvaluator, NetAndFallbackJudgeTheIntervalDelta) {
  obs::SloEvaluator eval(tight_options());
  obs::SloInputs inputs = healthy(0);
  inputs.net_events = 100;
  inputs.fallbacks = 100;
  (void)eval.evaluate(inputs);

  // +10 net events is exactly the threshold — not a breach (strictly over).
  inputs = healthy(kSecond);
  inputs.net_events = 110;
  inputs.fallbacks = 125;  // +25, also at threshold
  EXPECT_TRUE(eval.evaluate(inputs).empty());

  inputs = healthy(2 * kSecond);
  inputs.net_events = 121;   // +11 > 10
  inputs.fallbacks = 151;    // +26 > 25
  const auto breaches = eval.evaluate(inputs);
  ASSERT_EQ(breaches.size(), 2u);
  EXPECT_EQ(breaches[0].signal, "net");
  EXPECT_EQ(breaches[1].signal, "fallback");
}

TEST(SloEvaluator, CumulativeShrinkMeansResetNotUnderflow) {
  obs::SloEvaluator eval(tight_options());
  obs::SloInputs inputs = healthy(0);
  inputs.net_events = 1000;
  (void)eval.evaluate(inputs);

  // The source registry was reset: the honest interval delta is the whole
  // current value, never a wrapped subtraction.
  inputs = healthy(kSecond);
  inputs.net_events = 5;
  EXPECT_TRUE(eval.evaluate(inputs).empty());  // 5 <= 10

  inputs = healthy(2 * kSecond);
  inputs.net_events = 5 + 11;
  EXPECT_EQ(eval.evaluate(inputs).size(), 1u);
}

TEST(SloEvaluator, WindowLagIsGatedOnFirstWindow) {
  obs::SloEvaluator eval(tight_options());
  obs::SloInputs inputs;
  inputs.now_ns = 0;
  inputs.window_seen = false;
  (void)eval.evaluate(inputs);

  // Startup replay may take arbitrarily long before the first window; lag
  // only means something once a window has been delivered.
  inputs.now_ns = 100 * kSecond;
  EXPECT_TRUE(eval.evaluate(inputs).empty());

  inputs.window_seen = true;
  inputs.last_window_ns = 100 * kSecond;
  inputs.now_ns = 106 * kSecond;  // 6 s > 5 s threshold
  const auto breaches = eval.evaluate(inputs);
  ASSERT_EQ(breaches.size(), 1u);
  EXPECT_EQ(breaches[0].signal, "window_lag");
  EXPECT_DOUBLE_EQ(breaches[0].value, 6.0);
}

TEST(SloEvaluator, SustainedFiresOnceWhenTheEpisodeStarts) {
  obs::SloEvaluator eval(tight_options());
  obs::SloInputs inputs = healthy(0);
  (void)eval.evaluate(inputs);

  std::uint64_t stalls = 0;
  for (std::uint32_t i = 1; i <= 5; ++i) {
    inputs = healthy(i * kSecond);
    inputs.stall_dumps = ++stalls;  // one new dump every interval
    const auto breaches = eval.evaluate(inputs);
    ASSERT_EQ(breaches.size(), 1u) << "interval " << i;
    EXPECT_EQ(breaches[0].consecutive, i);
    // burn_intervals = 3: interval 3 starts the episode; 4 and 5 continue
    // it without re-firing (one flight dump per episode).
    EXPECT_EQ(breaches[0].sustained, i == 3) << "interval " << i;
  }
}

TEST(SloEvaluator, RecoveryReArmsTheEpisode) {
  obs::SloOptions options = tight_options();
  options.burn_intervals = 2;
  obs::SloEvaluator eval(options);
  obs::SloInputs inputs = healthy(0);
  (void)eval.evaluate(inputs);

  std::uint64_t stalls = 0;
  std::uint64_t t = 0;
  const auto step = [&](bool stall) {
    inputs = healthy(t += kSecond);
    if (stall) ++stalls;
    inputs.stall_dumps = stalls;
    return eval.evaluate(inputs);
  };

  EXPECT_FALSE(step(true)[0].sustained);   // consecutive = 1
  EXPECT_TRUE(step(true)[0].sustained);    // 2 -> episode starts
  EXPECT_FALSE(step(true)[0].sustained);   // 3, same episode
  EXPECT_TRUE(step(false).empty());        // clean interval re-arms
  EXPECT_FALSE(step(true)[0].sustained);   // new count starts at 1
  const auto again = step(true);
  ASSERT_EQ(again.size(), 1u);
  EXPECT_TRUE(again[0].sustained);         // second episode fires again
}

TEST(SloEvaluator, IndependentSignalsTrackIndependentCounts) {
  obs::SloOptions options = tight_options();
  options.burn_intervals = 2;
  obs::SloEvaluator eval(options);
  obs::SloInputs inputs = healthy(0);
  (void)eval.evaluate(inputs);

  // Interval 1: stall breaches, net clean.
  inputs = healthy(kSecond);
  inputs.stall_dumps = 1;
  auto breaches = eval.evaluate(inputs);
  ASSERT_EQ(breaches.size(), 1u);
  EXPECT_EQ(breaches[0].signal, "stall");

  // Interval 2: both breach — stall at consecutive 2 (sustained), net at 1.
  inputs = healthy(2 * kSecond);
  inputs.stall_dumps = 2;
  inputs.net_events = 100;
  breaches = eval.evaluate(inputs);
  ASSERT_EQ(breaches.size(), 2u);
  EXPECT_EQ(breaches[0].signal, "stall");
  EXPECT_TRUE(breaches[0].sustained);
  EXPECT_EQ(breaches[1].signal, "net");
  EXPECT_EQ(breaches[1].consecutive, 1u);
  EXPECT_FALSE(breaches[1].sustained);
}

TEST(SloWatcherApi, StatusTextReflectsLifecycle) {
  obs::SloWatcher& watcher = obs::SloWatcher::global();
  ASSERT_FALSE(watcher.running());
  EXPECT_NE(watcher.status_text().find("stopped"), std::string::npos);

  obs::SloOptions options;
  options.interval_ms = 3600 * 1000;  // never actually ticks in this test
  watcher.start(options);
  EXPECT_TRUE(watcher.running());
  EXPECT_NE(watcher.status_text().find("running"), std::string::npos);
  watcher.note_window();  // must not deadlock against the watch loop
  watcher.stop();
  EXPECT_FALSE(watcher.running());
}

}  // namespace
}  // namespace ccg

#include "ccg/summarize/graph_pca.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ccg/common/expect.hpp"
#include "ccg/common/rng.hpp"
#include "ccg/summarize/anomaly.hpp"

namespace ccg {
namespace {

NodeId ip_node(CommGraph& g, std::uint32_t ip) {
  return g.add_node(NodeKey::for_ip(IpAddr(ip)));
}

void edge(CommGraph& g, NodeId a, NodeId b, std::uint64_t bytes) {
  g.add_edge_volume(a, b, bytes, 0, 1, 0, 1, 1);
}

/// Block-structured graph: `blocks` groups of `size` nodes, dense inside.
CommGraph block_graph(std::size_t blocks, std::size_t size, std::uint64_t bytes,
                      std::uint32_t ip_base = 1000) {
  CommGraph g;
  std::vector<NodeId> nodes;
  for (std::size_t b = 0; b < blocks; ++b) {
    for (std::size_t i = 0; i < size; ++i) {
      nodes.push_back(ip_node(g, static_cast<std::uint32_t>(ip_base + b * 100 + i)));
    }
  }
  for (std::size_t b = 0; b < blocks; ++b) {
    for (std::size_t i = 0; i < size; ++i) {
      for (std::size_t j = i + 1; j < size; ++j) {
        edge(g, nodes[b * size + i], nodes[b * size + j], bytes);
      }
    }
  }
  return g;
}

TEST(NodeIndex, StableAcrossGraphs) {
  CommGraph g1;
  ip_node(g1, 1);
  ip_node(g1, 2);
  CommGraph g2;
  ip_node(g2, 2);
  ip_node(g2, 3);

  NodeIndex idx = NodeIndex::from_graphs({&g1, &g2});
  EXPECT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx.row_of(NodeKey::for_ip(IpAddr(1u))), 0u);
  EXPECT_EQ(idx.row_of(NodeKey::for_ip(IpAddr(2u))), 1u);
  EXPECT_EQ(idx.row_of(NodeKey::for_ip(IpAddr(3u))), 2u);
  EXPECT_EQ(idx.row_of(NodeKey::for_ip(IpAddr(9u))), NodeIndex::npos);
}

TEST(AdjacencyMatrix, SymmetricWithLogScale) {
  CommGraph g;
  const NodeId a = ip_node(g, 1);
  const NodeId b = ip_node(g, 2);
  edge(g, a, b, 1000);
  const NodeIndex idx = NodeIndex::from_graph(g);
  const Matrix m = adjacency_matrix(g, idx);
  EXPECT_TRUE(m.is_symmetric());
  EXPECT_NEAR(m(0, 1), std::log1p(1000.0), 1e-12);

  const Matrix raw = adjacency_matrix(g, idx, {.log_scale = false});
  EXPECT_DOUBLE_EQ(raw(0, 1), 1000.0);
}

TEST(AdjacencyMatrix, UnindexedNodesReportedAsMissedBytes) {
  CommGraph baseline;
  ip_node(baseline, 1);
  ip_node(baseline, 2);
  const NodeIndex idx = NodeIndex::from_graph(baseline);

  CommGraph later;
  const NodeId a = ip_node(later, 1);
  const NodeId stranger = ip_node(later, 77);
  edge(later, a, stranger, 5000);

  std::uint64_t missed = 0;
  const Matrix m = adjacency_matrix(later, idx, {}, &missed);
  EXPECT_EQ(missed, 5000u);
  EXPECT_DOUBLE_EQ(m.abs_sum(), 0.0);
}

TEST(PcaOfGraph, BlockGraphNeedsOneComponentPerBlock) {
  // Each uniform block c(J - I) has one dominant eigenvalue c(n-1) plus
  // n-1 eigenvalues of -c, so k=3 captures the three block structures.
  // Analytically, |M - M3|_1 / |M|_1 = (3 * 14c) / (3 * 56c) = 0.25 for
  // 8-node blocks (the paper's §2.2 claim in miniature: error collapses
  // once k reaches the number of structures).
  const CommGraph g = block_graph(3, 8, 100'000);
  PcaSummary pca = pca_of_graph(g);
  EXPECT_NEAR(pca.reconstruction_error(3), 0.25, 0.02);
  EXPECT_GT(pca.reconstruction_error(1), 0.5);
  // Full rank reconstructs exactly.
  EXPECT_NEAR(pca.reconstruction_error(pca.dimension()), 0.0, 1e-8);
  // And the error curve is monotone through the interesting region.
  const auto curve = pca.error_curve(10);
  for (std::size_t k = 1; k < curve.size(); ++k) {
    EXPECT_LE(curve[k], curve[k - 1] + 1e-9);
  }
}

TEST(SpectralDetector, QuietOnBaselineLikeTraffic) {
  // Baseline: three stable blocks over two "hours" with mild noise.
  Rng rng(5);
  auto noisy_block_graph = [&](std::uint64_t base) {
    CommGraph g = block_graph(3, 8, base);
    return g;
  };
  const CommGraph h0 = noisy_block_graph(100'000);
  const CommGraph h1 = noisy_block_graph(105'000);
  const CommGraph h2 = noisy_block_graph(95'000);

  SpectralAnomalyDetector detector({.rank = 6});
  detector.fit({&h0, &h1});
  const auto score = detector.score(h2);
  EXPECT_LT(std::abs(score.zscore), 3.0) << score.to_string();
  EXPECT_FALSE(detector.is_alert(score));
  EXPECT_EQ(score.new_node_byte_share, 0.0);
}

TEST(SpectralDetector, FlagsStructuralChange) {
  const CommGraph h0 = block_graph(3, 8, 100'000);
  const CommGraph h1 = block_graph(3, 8, 102'000);

  SpectralAnomalyDetector detector({.rank = 4});
  detector.fit({&h0, &h1});

  // Scan-like change: one node suddenly touches every other node.
  CommGraph attacked = block_graph(3, 8, 100'000);
  const NodeId scanner = 0;
  for (NodeId v = 1; v < attacked.node_count(); ++v) {
    if (!attacked.find_edge(scanner, v)) {
      attacked.add_edge_volume(scanner, v, 60'000, 0, 60, 0, 1, 1);
    }
  }
  const auto score = detector.score(attacked);
  EXPECT_TRUE(detector.is_alert(score)) << score.to_string();
  EXPECT_GT(score.zscore, 3.0);
}

TEST(SpectralDetector, FlagsNewNodeTraffic) {
  const CommGraph h0 = block_graph(3, 8, 100'000);
  SpectralAnomalyDetector detector({.rank = 4});
  detector.fit({&h0});

  // Exfil-like: traffic to an endpoint the baseline never saw.
  CommGraph exfil = block_graph(3, 8, 100'000);
  const NodeId insider = 0;
  const NodeId sink = ip_node(exfil, 0x64000001);
  edge(exfil, insider, sink, 50'000'000);

  const auto score = detector.score(exfil);
  EXPECT_GT(score.new_node_byte_share, 0.02);
  EXPECT_TRUE(detector.is_alert(score));
}

TEST(SpectralDetector, TracksEdgeChurnAcrossScores) {
  const CommGraph h0 = block_graph(3, 8, 100'000);
  SpectralAnomalyDetector detector({.rank = 4});
  detector.fit({&h0});

  const auto first = detector.score(h0);
  EXPECT_DOUBLE_EQ(first.edge_jaccard_vs_prev, 1.0);  // no previous yet
  const auto second = detector.score(h0);
  EXPECT_DOUBLE_EQ(second.edge_jaccard_vs_prev, 1.0);  // identical to previous

  const CommGraph different = block_graph(3, 8, 100'000, /*ip_base=*/50'000);
  const auto third = detector.score(different);
  EXPECT_LT(third.edge_jaccard_vs_prev, 0.1);
}

TEST(SpectralDetector, RequiresFitBeforeScore) {
  SpectralAnomalyDetector detector;
  const CommGraph g = block_graph(1, 4, 1000);
  EXPECT_THROW(detector.score(g), ContractViolation);
  EXPECT_THROW(detector.fit({}), ContractViolation);
}

}  // namespace
}  // namespace ccg

// Failure injection and degraded-mode behavior: tiny flow tables (eviction
// storms), partially-monitored estates, duplicated records, and agents
// joining mid-stream. The telemetry path must degrade by losing precision,
// never by inventing or silently dropping traffic.
#include <gtest/gtest.h>

#include "ccg/graph/builder.hpp"
#include "ccg/telemetry/collector.hpp"
#include "ccg/workload/driver.hpp"
#include "ccg/workload/presets.hpp"

namespace ccg {
namespace {

std::uint64_t graph_bytes_from_run(std::size_t flow_table_capacity,
                                   std::uint64_t seed = 5) {
  Cluster cluster(presets::tiny(), seed);
  TelemetryHub hub(ProviderProfile::azure(), seed, flow_table_capacity);
  SimulationDriver driver(cluster, hub);
  const auto ips = cluster.monitored_ips();
  GraphBuilder builder({.facet = GraphFacet::kIp, .window_minutes = 60},
                       {ips.begin(), ips.end()});
  hub.set_sink(&builder);
  driver.run(TimeWindow::hour(0));
  builder.flush();
  return builder.take_graphs().at(0).total_bytes();
}

TEST(Robustness, EvictionStormLosesNoBytes) {
  // Export-on-evict means a pathologically small SmartNIC table changes
  // record *timing*, not totals: the hour's graph carries the same bytes.
  const std::uint64_t roomy = graph_bytes_from_run(1 << 16);
  const std::uint64_t tiny = graph_bytes_from_run(4);
  EXPECT_EQ(tiny, roomy);
}

TEST(Robustness, PartialMonitoringStillSeesOneSidedFlows) {
  // Deploy agents on only the web tier: web<->api flows are still observed
  // (from the web side); api<->db flows vanish entirely. The graph is
  // exactly the union of what monitored NICs can see.
  Cluster cluster(presets::tiny(), 9);
  TelemetryHub hub(ProviderProfile::azure(), 9);
  // NOTE: deliberately do NOT use SimulationDriver's auto-registration.
  const auto webs = cluster.ips_of_role("web");
  for (const IpAddr ip : webs) hub.add_host(ip);

  GraphBuilder builder({.facet = GraphFacet::kIp, .window_minutes = 60},
                       {webs.begin(), webs.end()});
  hub.set_sink(&builder);
  std::vector<FlowActivity> activities;
  for (std::int64_t m = 0; m < 60; ++m) {
    activities.clear();
    cluster.generate_minute(MinuteBucket(m), activities);
    for (const auto& a : activities) {
      hub.observe(a.flow, a.counters, MinuteBucket(m), Initiator::kLocal);
      const FlowKey mirrored{.local_ip = a.flow.remote_ip,
                             .local_port = a.flow.remote_port,
                             .remote_ip = a.flow.local_ip,
                             .remote_port = a.flow.local_port,
                             .protocol = a.flow.protocol};
      hub.observe(mirrored,
                  TrafficCounters{.packets_sent = a.counters.packets_rcvd,
                                  .packets_rcvd = a.counters.packets_sent,
                                  .bytes_sent = a.counters.bytes_rcvd,
                                  .bytes_rcvd = a.counters.bytes_sent},
                  MinuteBucket(m), Initiator::kRemote);
    }
    hub.end_interval(MinuteBucket(m));
  }
  builder.flush();
  const CommGraph g = builder.take_graphs().at(0);

  // Webs and their direct peers (clients, apis) appear; the db — only
  // reachable via api<->db flows — does not.
  const auto dbs = cluster.ips_of_role("db");
  ASSERT_EQ(dbs.size(), 1u);
  EXPECT_FALSE(g.find_node(NodeKey::for_ip(dbs[0])).has_value());
  for (const IpAddr web : webs) {
    EXPECT_TRUE(g.find_node(NodeKey::for_ip(web)).has_value());
  }
  for (const IpAddr api : cluster.ips_of_role("api")) {
    EXPECT_TRUE(g.find_node(NodeKey::for_ip(api)).has_value());
  }
}

TEST(Robustness, DuplicatedBatchesInflateVolumesButNotStructure) {
  // An at-least-once collector delivering a batch twice must not create
  // phantom nodes or edges (volumes double — visible, not silent).
  const auto& make_records = [] {
    Cluster cluster(presets::tiny(), 11);
    TelemetryHub hub(ProviderProfile::azure(), 11);
    SimulationDriver driver(cluster, hub);
    std::vector<std::vector<ConnectionSummary>> batches;
    for (std::int64_t m = 0; m < 30; ++m) batches.push_back(driver.step(MinuteBucket(m)));
    return batches;
  };
  const auto batches = make_records();

  GraphBuilder once({.facet = GraphFacet::kIp, .window_minutes = 60}, {});
  GraphBuilder twice({.facet = GraphFacet::kIp, .window_minutes = 60}, {});
  for (std::size_t m = 0; m < batches.size(); ++m) {
    once.on_batch(MinuteBucket(static_cast<std::int64_t>(m)), batches[m]);
    twice.on_batch(MinuteBucket(static_cast<std::int64_t>(m)), batches[m]);
    twice.on_batch(MinuteBucket(static_cast<std::int64_t>(m)), batches[m]);
  }
  once.flush();
  twice.flush();
  const CommGraph a = once.take_graphs().at(0);
  const CommGraph b = twice.take_graphs().at(0);
  EXPECT_EQ(a.node_count(), b.node_count());
  EXPECT_EQ(a.edge_count(), b.edge_count());
  EXPECT_EQ(2 * a.total_bytes(), b.total_bytes());
}

TEST(Robustness, LateHostRegistrationOnlyMissesEarlyMinutes) {
  Cluster cluster(presets::tiny(), 13);
  TelemetryHub hub(ProviderProfile::azure(), 13);
  SimulationDriver driver(cluster, hub);  // registers everyone at minute 0

  // A second hub where the db's agent shows up 30 minutes in.
  Cluster cluster2(presets::tiny(), 13);
  TelemetryHub late_hub(ProviderProfile::azure(), 13);
  SimulationDriver late_driver(cluster2, late_hub);
  // (Drivers register all; emulate lateness by comparing record counts of
  // a hub whose host set was complete vs a fresh host added mid-run.)
  std::uint64_t full_records = 0, late_records = 0;
  for (std::int64_t m = 0; m < 60; ++m) {
    full_records += driver.step(MinuteBucket(m)).size();
    late_records += late_driver.step(MinuteBucket(m)).size();
    if (m == 29) late_hub.add_host(cluster2.allocate_external_ip());  // no-op host
  }
  // Adding an irrelevant host mid-run changes nothing.
  EXPECT_EQ(full_records, late_records);
}

TEST(Robustness, ZeroTrafficWindowYieldsNoGraph) {
  GraphBuilder builder({.facet = GraphFacet::kIp, .window_minutes = 60}, {});
  builder.flush();
  EXPECT_TRUE(builder.graphs().empty());
  builder.on_batch(MinuteBucket(0), {});
  builder.flush();
  EXPECT_TRUE(builder.graphs().empty());
}

}  // namespace
}  // namespace ccg

// GraphPatch: the exact (lossless) delta under the snapshot store. The
// contract tested here is stronger than value equality — apply_patch must
// reproduce the target's NodeId/EdgeId assignment order, because downstream
// analyses tie-break by iteration order.
#include "ccg/graph/delta.hpp"

#include <gtest/gtest.h>

#include "ccg/common/rng.hpp"
#include "ccg/graph/builder.hpp"
#include "ccg/workload/driver.hpp"
#include "ccg/workload/presets.hpp"

namespace ccg {
namespace {

CommGraph random_graph(std::uint64_t seed, std::size_t nodes = 25,
                       std::size_t edges = 60) {
  Rng rng(seed);
  CommGraph g(TimeWindow::hour(1));
  for (std::size_t i = 0; i < nodes; ++i) {
    const NodeId id = g.add_node(NodeKey::for_ip(IpAddr(static_cast<std::uint32_t>(i + 1))));
    g.set_monitored(id, rng.chance(0.5));
  }
  for (std::size_t e = 0; e < edges; ++e) {
    const NodeId a = static_cast<NodeId>(rng.uniform(nodes));
    NodeId b = static_cast<NodeId>(rng.uniform(nodes));
    if (a == b) b = (b + 1) % nodes;
    g.add_edge_volume(a, b, rng.uniform(1 << 20), rng.uniform(1 << 20),
                      rng.uniform(1 << 10), rng.uniform(1 << 10),
                      1 + rng.uniform(60),
                      1 + static_cast<std::uint32_t>(rng.uniform(60)),
                      rng.uniform(30), rng.uniform(30),
                      rng.chance(0.8) ? static_cast<std::int32_t>(rng.uniform(65536)) : -1);
  }
  return g;
}

/// Per-window graphs from a simulated workload — realistic churn: most
/// nodes/edges persist window over window, some come and go.
std::vector<CommGraph> workload_windows(std::int64_t minutes,
                                        std::int64_t window_minutes,
                                        std::uint64_t seed) {
  Cluster cluster(presets::tiny(), seed);
  TelemetryHub hub(ProviderProfile::azure(), seed);
  SimulationDriver driver(cluster, hub);
  const auto ips = cluster.monitored_ips();
  GraphBuilder builder({.facet = GraphFacet::kIp,
                        .window_minutes = window_minutes,
                        .collapse_threshold = 0.001},
                       {ips.begin(), ips.end()});
  hub.set_sink(&builder);
  driver.run(TimeWindow::minutes(0, minutes));
  builder.flush();
  return builder.take_graphs();
}

TEST(GraphPatch, KeyframeRoundTripsRandomGraphs) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const CommGraph g = random_graph(seed);
    const GraphPatch keyframe = make_patch(CommGraph{}, g);
    EXPECT_EQ(keyframe.nodes.size(), g.node_count());
    EXPECT_EQ(keyframe.edges.size(), g.edge_count());
    for (const auto& n : keyframe.nodes) EXPECT_LT(n.ref, 0);
    const auto rebuilt = apply_patch(CommGraph{}, keyframe);
    ASSERT_TRUE(rebuilt.has_value()) << "seed " << seed;
    EXPECT_TRUE(graphs_identical(g, *rebuilt));
  }
}

TEST(GraphPatch, DeltaChainReproducesWorkloadWindows) {
  const auto windows = workload_windows(120, 5, 99);
  ASSERT_GE(windows.size(), 20u);

  // Keyframe the first window, then roll deltas forward — exactly the
  // store's materialization loop — and demand bit-identical graphs.
  auto current = apply_patch(CommGraph{}, make_patch(CommGraph{}, windows[0]));
  ASSERT_TRUE(current.has_value());
  ASSERT_TRUE(graphs_identical(windows[0], *current));
  for (std::size_t i = 1; i < windows.size(); ++i) {
    const GraphPatch patch = make_patch(*current, windows[i]);
    // Churn sanity: consecutive tiny-preset windows share most nodes, so
    // the patch must actually reference the base instead of re-emitting.
    std::size_t refs = 0;
    for (const auto& n : patch.nodes) refs += n.ref >= 0 ? 1 : 0;
    EXPECT_GT(refs, patch.nodes.size() / 2) << "window " << i;
    current = apply_patch(*current, patch);
    ASSERT_TRUE(current.has_value()) << "window " << i;
    ASSERT_TRUE(graphs_identical(windows[i], *current)) << "window " << i;
  }
}

TEST(GraphPatch, AppliesEndpointOrientationFlip) {
  // Same conversation in both windows, but the target assigns NodeIds in
  // the opposite order, so the canonical (a < b) edge flips direction and
  // its ab/ba stats must swap on the way through the patch.
  CommGraph before(TimeWindow::hour(0));
  before.add_node(NodeKey::for_ip(IpAddr(1u)));
  before.add_node(NodeKey::for_ip(IpAddr(2u)));
  before.add_edge_volume(0, 1, 1000, 50, 10, 5, 3, 3, 2, 0, 443);

  CommGraph after(TimeWindow::hour(1));
  after.add_node(NodeKey::for_ip(IpAddr(2u)));  // order swapped
  after.add_node(NodeKey::for_ip(IpAddr(1u)));
  after.add_edge_volume(0, 1, 60, 1200, 6, 12, 4, 4, 0, 3, 443);

  const GraphPatch patch = make_patch(before, after);
  ASSERT_EQ(patch.edges.size(), 1u);
  EXPECT_GE(patch.edges[0].ref, 0) << "same conversation must be a ref";
  const auto rebuilt = apply_patch(before, patch);
  ASSERT_TRUE(rebuilt.has_value());
  EXPECT_TRUE(graphs_identical(after, *rebuilt));
  EXPECT_EQ(rebuilt->edge(0).stats.bytes_ab, 60u);
  EXPECT_EQ(rebuilt->edge(0).stats.bytes_ba, 1200u);
}

TEST(GraphPatch, CarriesFlagChangesOnReferencedNodes) {
  CommGraph before(TimeWindow::hour(0));
  before.add_node(NodeKey::for_ip(IpAddr(1u)));
  before.set_monitored(0, false);

  CommGraph after(TimeWindow::hour(1));
  after.add_node(NodeKey::for_ip(IpAddr(1u)));
  after.set_monitored(0, true);

  const auto rebuilt = apply_patch(before, make_patch(before, after));
  ASSERT_TRUE(rebuilt.has_value());
  EXPECT_TRUE(rebuilt->node_stats(0).monitored);
  EXPECT_TRUE(graphs_identical(after, *rebuilt));
}

TEST(GraphPatch, RejectsInconsistentPatches) {
  const CommGraph base = random_graph(5, 8, 12);

  {
    GraphPatch dangling = make_patch(base, base);
    dangling.nodes[0].ref = 99;  // no such node in base
    EXPECT_FALSE(apply_patch(base, dangling).has_value());
  }
  {
    GraphPatch dup = make_patch(CommGraph{}, base);
    dup.nodes[1] = dup.nodes[0];  // duplicate new-node key
    EXPECT_FALSE(apply_patch(CommGraph{}, dup).has_value());
  }
  {
    GraphPatch dup_edge = make_patch(CommGraph{}, base);
    ASSERT_GE(dup_edge.edges.size(), 2u);
    dup_edge.edges[1] = dup_edge.edges[0];  // same pair twice
    EXPECT_FALSE(apply_patch(CommGraph{}, dup_edge).has_value());
  }
  {
    // A patch made against one base must not silently apply to another.
    GraphPatch patch = make_patch(base, base);
    EXPECT_FALSE(apply_patch(CommGraph{}, patch).has_value());
  }
}

// --- compose_patches --------------------------------------------------------
//
// The incremental engine folds multi-window patch chains; these pin the
// algebra: apply(g0, compose(a, b)) == apply(apply(g0, a), b) including id
// assignment order, the empty patch is a two-sided identity, and folding
// survives renumberings that flip an edge's stored orientation.

TEST(GraphPatchCompose, PairwiseMatchesSequentialApply) {
  const auto windows = workload_windows(120, 5, 7);
  ASSERT_GE(windows.size(), 10u);
  for (std::size_t i = 2; i < windows.size(); ++i) {
    const CommGraph& g0 = windows[i - 2];
    const GraphPatch a = make_patch(g0, windows[i - 1]);
    const GraphPatch b = make_patch(windows[i - 1], windows[i]);
    const auto ab = compose_patches(a, b);
    ASSERT_TRUE(ab.has_value()) << "window " << i;
    const auto direct = apply_patch(g0, *ab);
    ASSERT_TRUE(direct.has_value()) << "window " << i;
    EXPECT_TRUE(graphs_identical(windows[i], *direct)) << "window " << i;
  }
}

TEST(GraphPatchCompose, FoldsWholeChainOntoKeyframe) {
  // Left-fold every delta onto the initial keyframe: at each step the
  // folded patch must still take the empty graph straight to that window.
  const auto windows = workload_windows(120, 5, 99);
  ASSERT_GE(windows.size(), 10u);
  GraphPatch folded = make_patch(CommGraph{}, windows[0]);
  for (std::size_t i = 1; i < windows.size(); ++i) {
    const auto next =
        compose_patches(folded, make_patch(windows[i - 1], windows[i]));
    ASSERT_TRUE(next.has_value()) << "window " << i;
    folded = *next;
    const auto direct = apply_patch(CommGraph{}, folded);
    ASSERT_TRUE(direct.has_value()) << "window " << i;
    EXPECT_TRUE(graphs_identical(windows[i], *direct)) << "window " << i;
  }
}

TEST(GraphPatchCompose, EmptyPatchIsTwoSidedIdentity) {
  for (const std::uint64_t seed : {11ull, 12ull, 13ull}) {
    const CommGraph g0 = random_graph(seed);
    const CommGraph g1 = random_graph(seed + 100, 30, 70);
    const GraphPatch a = make_patch(g0, g1);

    const auto right = compose_patches(a, make_patch(g1, g1));
    ASSERT_TRUE(right.has_value());
    auto applied = apply_patch(g0, *right);
    ASSERT_TRUE(applied.has_value());
    EXPECT_TRUE(graphs_identical(g1, *applied)) << "right identity";

    const auto left = compose_patches(make_patch(g0, g0), a);
    ASSERT_TRUE(left.has_value());
    applied = apply_patch(g0, *left);
    ASSERT_TRUE(applied.has_value());
    EXPECT_TRUE(graphs_identical(g1, *applied)) << "left identity";
  }
}

TEST(GraphPatchCompose, SurvivesOrientationFlippingRenumber) {
  // g0 stores the edge as ip1->ip2; g1 reverses node insertion order, so
  // the same conversation is stored ip2->ip1 — the directional stats swap
  // sides in the patch's target orientation. g2 flips back. Composition
  // must re-orient stats at every step or the asymmetric byte counts land
  // on the wrong side.
  CommGraph g0(TimeWindow::hour(0));
  g0.add_node(NodeKey::for_ip(IpAddr(1u)));
  g0.add_node(NodeKey::for_ip(IpAddr(2u)));
  g0.add_edge_volume(0, 1, 1000, 7, 10, 1, 5, 5, 5, 0, 443);

  CommGraph g1(TimeWindow::hour(1));
  g1.add_node(NodeKey::for_ip(IpAddr(2u)));
  g1.add_node(NodeKey::for_ip(IpAddr(1u)));
  g1.add_edge_volume(0, 1, 9, 2000, 1, 20, 6, 6, 0, 6, 443);  // ip2->ip1

  CommGraph g2(TimeWindow::hour(2));
  g2.add_node(NodeKey::for_ip(IpAddr(1u)));
  g2.add_node(NodeKey::for_ip(IpAddr(2u)));
  g2.add_edge_volume(0, 1, 3000, 11, 30, 2, 7, 7, 7, 0, 443);

  const auto ab =
      compose_patches(make_patch(g0, g1), make_patch(g1, g2));
  ASSERT_TRUE(ab.has_value());
  const auto direct = apply_patch(g0, *ab);
  ASSERT_TRUE(direct.has_value());
  EXPECT_TRUE(graphs_identical(g2, *direct));
  EXPECT_EQ(direct->edge(0).stats.bytes_ab, 3000u);
  EXPECT_EQ(direct->edge(0).stats.bytes_ba, 11u);

  const auto ba =
      compose_patches(make_patch(g1, g2), make_patch(g2, g1));
  ASSERT_TRUE(ba.has_value());
  const auto back = apply_patch(g1, *ba);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(graphs_identical(g1, *back));
  EXPECT_EQ(back->edge(0).stats.bytes_ab, 9u);
  EXPECT_EQ(back->edge(0).stats.bytes_ba, 2000u);
}

TEST(GraphPatchCompose, RejectsNonConsecutivePatches) {
  const CommGraph g0 = random_graph(21);
  const CommGraph g1 = random_graph(22, 30, 70);
  const GraphPatch keyframe = make_patch(CommGraph{}, g0);
  // `b` refers to nodes of g1, not of keyframe's target g0.
  GraphPatch b = make_patch(g1, g1);
  b.nodes.resize(g0.node_count() + 5);  // refs beyond a's target
  for (std::size_t i = 0; i < b.nodes.size(); ++i)
    b.nodes[i].ref = static_cast<std::int64_t>(i);
  EXPECT_FALSE(compose_patches(keyframe, b).has_value());
}

TEST(GraphPatch, GraphsIdenticalIsOrderSensitive) {
  CommGraph a(TimeWindow::hour(0));
  a.add_node(NodeKey::for_ip(IpAddr(1u)));
  a.add_node(NodeKey::for_ip(IpAddr(2u)));
  CommGraph b(TimeWindow::hour(0));
  b.add_node(NodeKey::for_ip(IpAddr(2u)));
  b.add_node(NodeKey::for_ip(IpAddr(1u)));
  EXPECT_TRUE(graphs_identical(a, a));
  EXPECT_FALSE(graphs_identical(a, b)) << "same keys, different NodeId order";
}

}  // namespace
}  // namespace ccg

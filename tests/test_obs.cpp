#include "ccg/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "ccg/analytics/pipeline.hpp"
#include "ccg/analytics/service.hpp"
#include "ccg/common/rng.hpp"
#include "ccg/obs/export.hpp"
#include "ccg/obs/span.hpp"
#include "ccg/workload/driver.hpp"
#include "ccg/workload/presets.hpp"

namespace ccg {
namespace {

using obs::Histogram;
using obs::HistogramOptions;
using obs::Registry;

// --- histogram buckets & quantiles -------------------------------------------

TEST(ObsHistogram, BucketBoundariesAreUpperInclusive) {
  // Bounds: 1, 2, 4, 8 plus the +Inf overflow bucket.
  Histogram h({.first_bound = 1.0, .growth = 2.0, .buckets = 4});
  ASSERT_EQ(h.bucket_count(), 5u);
  EXPECT_DOUBLE_EQ(h.upper_bound(0), 1.0);
  EXPECT_DOUBLE_EQ(h.upper_bound(1), 2.0);
  EXPECT_DOUBLE_EQ(h.upper_bound(2), 4.0);
  EXPECT_DOUBLE_EQ(h.upper_bound(3), 8.0);
  EXPECT_TRUE(std::isinf(h.upper_bound(4)));

  h.record(0.5);   // bucket 0
  h.record(1.0);   // bucket 0: bounds are upper-inclusive
  h.record(1.01);  // bucket 1
  h.record(2.0);   // bucket 1
  h.record(4.0);   // bucket 2
  h.record(8.0);   // bucket 3
  h.record(8.01);  // overflow
  h.record(1e9);   // overflow

  EXPECT_EQ(h.bucket_value(0), 2u);
  EXPECT_EQ(h.bucket_value(1), 2u);
  EXPECT_EQ(h.bucket_value(2), 1u);
  EXPECT_EQ(h.bucket_value(3), 1u);
  EXPECT_EQ(h.bucket_value(4), 2u);
  EXPECT_EQ(h.count(), 8u);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
}

TEST(ObsHistogram, QuantileInterpolatesInsideBucket) {
  Histogram h({.first_bound = 10.0, .growth = 2.0, .buckets = 3});
  h.record(5.0);
  h.record(15.0);
  h.record(15.0);
  h.record(35.0);
  // p50 rank = 2 of 4: one sample below bucket (10,20], half way through
  // its two samples -> 10 + 0.5 * (20 - 10) = 15.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 15.0);
  // p100 is the observed max, p0 clamps to the observed min.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 35.0);
  EXPECT_GE(h.quantile(0.0), 5.0 - 1e-12);
}

TEST(ObsHistogram, SingleValueQuantilesCollapseToThatValue) {
  Histogram h;
  h.record(0.003);
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(q), 0.003) << q;
  }
}

TEST(ObsHistogram, QuantilesAreMonotoneAndEmptyIsZero) {
  Histogram empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.min(), 0.0);
  EXPECT_DOUBLE_EQ(empty.max(), 0.0);

  Histogram h;
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    h.record(1e-6 * static_cast<double>(1 + rng.uniform(1'000'000)));
  }
  EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
  EXPECT_LE(h.quantile(0.9), h.quantile(0.99));
  EXPECT_LE(h.quantile(0.99), h.max());
  EXPECT_GE(h.quantile(0.5), h.min());
}

TEST(ObsHistogram, OverflowQuantileIsCappedByObservedMax) {
  Histogram h({.first_bound = 1.0, .growth = 2.0, .buckets = 2});
  h.record(100.0);  // overflow bucket (bounds are 1, 2)
  h.record(200.0);
  EXPECT_GE(h.quantile(0.99), 100.0);
  EXPECT_LE(h.quantile(0.99), 200.0);
}

// --- concurrency -------------------------------------------------------------

TEST(ObsCounter, ConcurrentIncrementsAreExact) {
  Registry registry;
  obs::Counter& counter = registry.counter("test.hits");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ObsHistogram, ConcurrentRecordsKeepExactCountAndSum) {
  Histogram h;
  constexpr int kThreads = 6;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.record(0.001);
    });
  }
  for (auto& t : threads) t.join();
  const auto total = static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(h.count(), total);
  EXPECT_NEAR(h.sum(), 0.001 * static_cast<double>(total), 1e-6);
  std::uint64_t bucket_total = 0;
  for (std::size_t i = 0; i < h.bucket_count(); ++i) {
    bucket_total += h.bucket_value(i);
  }
  EXPECT_EQ(bucket_total, total);
}

TEST(ObsGauge, ConcurrentUpdateMaxKeepsMaximum) {
  Registry registry;
  obs::Gauge& gauge = registry.gauge("test.hwm");
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&gauge, t] {
      for (int i = 0; i < 10'000; ++i) {
        gauge.update_max(static_cast<double>(t * 10'000 + i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(gauge.value(), 79'999.0);
}

TEST(ObsRegistry, SameNameReturnsSameInstrument) {
  Registry registry;
  EXPECT_EQ(&registry.counter("a"), &registry.counter("a"));
  EXPECT_NE(&registry.counter("a"), &registry.counter("b"));
  EXPECT_EQ(&registry.histogram("h"), &registry.histogram("h"));
  EXPECT_EQ(registry.instrument_count(), 3u);

  registry.counter("a").add(5);
  registry.reset();
  EXPECT_EQ(registry.counter("a").value(), 0u);
  EXPECT_EQ(registry.instrument_count(), 3u);  // registrations survive reset
}

// --- exporters ---------------------------------------------------------------

Registry& golden_registry() {
  static Registry* registry = [] {
    auto* r = new Registry();
    r->counter("ccg.test.requests").add(3);
    r->gauge("ccg.test.depth").set(2.5);
    Histogram& h =
        r->histogram("ccg.test.latency", {.first_bound = 1.0, .growth = 2.0, .buckets = 2});
    h.record(0.5);
    h.record(3.0);
    h.record(100.0);
    return r;
  }();
  return *registry;
}

TEST(ObsExport, PrometheusGolden) {
  const std::string expected =
      "# HELP ccg_test_requests_total ccg.test.requests\n"
      "# TYPE ccg_test_requests_total counter\n"
      "ccg_test_requests_total 3\n"
      "# HELP ccg_test_depth ccg.test.depth\n"
      "# TYPE ccg_test_depth gauge\n"
      "ccg_test_depth 2.5\n"
      "# HELP ccg_test_latency ccg.test.latency\n"
      "# TYPE ccg_test_latency histogram\n"
      "ccg_test_latency_bucket{le=\"1\"} 1\n"
      "ccg_test_latency_bucket{le=\"2\"} 1\n"
      "ccg_test_latency_bucket{le=\"+Inf\"} 3\n"
      "ccg_test_latency_sum 103.5\n"
      "ccg_test_latency_count 3\n";
  EXPECT_EQ(obs::to_prometheus(golden_registry().snapshot()), expected);
}

TEST(ObsExport, PrometheusLabeledSeriesShareOneHeaderBlock) {
  // Fleet-merged snapshots put the unlabeled local series first, then one
  // labeled series per shard, all adjacent. The exposition format allows
  // exactly one HELP/TYPE block per metric family.
  obs::Snapshot snap;
  snap.counters.push_back({"ccg.dist.agg.windows_merged", 4, {}});
  snap.counters.push_back({"ccg.dist.shard.windows", 2, {{"shard", "0"}}});
  snap.counters.push_back({"ccg.dist.shard.windows", 3, {{"shard", "1"}}});
  const std::string expected =
      "# HELP ccg_dist_agg_windows_merged_total ccg.dist.agg.windows_merged\n"
      "# TYPE ccg_dist_agg_windows_merged_total counter\n"
      "ccg_dist_agg_windows_merged_total 4\n"
      "# HELP ccg_dist_shard_windows_total ccg.dist.shard.windows\n"
      "# TYPE ccg_dist_shard_windows_total counter\n"
      "ccg_dist_shard_windows_total{shard=\"0\"} 2\n"
      "ccg_dist_shard_windows_total{shard=\"1\"} 3\n";
  EXPECT_EQ(obs::to_prometheus(snap), expected);
}

TEST(ObsExport, PrometheusLabelValuesAreEscaped) {
  obs::Snapshot snap;
  snap.gauges.push_back({"ccg.test.g", 1.0, {{"path", "a\\b\"c\nd"}}});
  const std::string text = obs::to_prometheus(snap);
  EXPECT_NE(text.find("ccg_test_g{path=\"a\\\\b\\\"c\\nd\"} 1\n"),
            std::string::npos)
      << text;
}

TEST(ObsExport, PrometheusLabeledHistogramAppendsLe) {
  obs::Snapshot snap;
  obs::HistogramSample h;
  h.name = "ccg.test.lat";
  h.buckets = {{1.0, 2}, {std::numeric_limits<double>::infinity(), 1}};
  h.count = 3;
  h.sum = 4.5;
  h.labels = {{"shard", "2"}};
  snap.histograms.push_back(std::move(h));
  const std::string expected =
      "# HELP ccg_test_lat ccg.test.lat\n"
      "# TYPE ccg_test_lat histogram\n"
      "ccg_test_lat_bucket{shard=\"2\",le=\"1\"} 2\n"
      "ccg_test_lat_bucket{shard=\"2\",le=\"+Inf\"} 3\n"
      "ccg_test_lat_sum{shard=\"2\"} 4.5\n"
      "ccg_test_lat_count{shard=\"2\"} 3\n";
  EXPECT_EQ(obs::to_prometheus(snap), expected);
}

// --- snapshot deltas (the telemetry shipping primitive) ----------------------

TEST(ObsDelta, CounterDeltaOmitsUnchangedAndShipsResets) {
  Registry r;
  obs::Counter& a = r.counter("a");
  obs::Counter& b = r.counter("b");
  a.add(5);
  b.add(2);

  // Bootstrap against a default-constructed prev: the full snapshot ships.
  obs::Snapshot base;
  obs::Snapshot first = r.snapshot_delta(base, &base);
  ASSERT_EQ(first.counters.size(), 2u);
  EXPECT_EQ(first.counters[0].name, "a");
  EXPECT_EQ(first.counters[0].value, 5u);

  a.add(3);
  obs::Snapshot d = r.snapshot_delta(base, &base);
  ASSERT_EQ(d.counters.size(), 1u);  // b unchanged -> omitted
  EXPECT_EQ(d.counters[0].name, "a");
  EXPECT_EQ(d.counters[0].value, 3u);

  // A value below prev is a reset: the current value ships, so the
  // receiver's accumulation stays monotone-ish instead of wrapping.
  a.reset();
  a.add(1);
  d = r.snapshot_delta(base, &base);
  ASSERT_EQ(d.counters.size(), 1u);
  EXPECT_EQ(d.counters[0].value, 1u);

  EXPECT_TRUE(r.snapshot_delta(base).counters.empty());
}

TEST(ObsDelta, GaugeShipsOnlyOnChange) {
  Registry r;
  obs::Gauge& g = r.gauge("depth");
  g.set(2.5);
  obs::Snapshot base;
  obs::Snapshot d = r.snapshot_delta(base, &base);
  ASSERT_EQ(d.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(d.gauges[0].value, 2.5);

  EXPECT_TRUE(r.snapshot_delta(base, nullptr).gauges.empty());

  g.set(3.0);
  d = r.snapshot_delta(base, &base);
  ASSERT_EQ(d.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(d.gauges[0].value, 3.0);
}

TEST(ObsDelta, HistogramShipsBucketDiffsAndCurrentMinMax) {
  Registry r;
  Histogram& h =
      r.histogram("lat", {.first_bound = 1.0, .growth = 2.0, .buckets = 2});
  h.record(0.5);
  h.record(3.0);
  obs::Snapshot base;
  obs::Snapshot d = r.snapshot_delta(base, &base);
  ASSERT_EQ(d.histograms.size(), 1u);
  EXPECT_EQ(d.histograms[0].count, 2u);

  h.record(0.7);
  h.record(100.0);
  d = r.snapshot_delta(base, &base);
  ASSERT_EQ(d.histograms.size(), 1u);
  const obs::HistogramSample& s = d.histograms[0];
  EXPECT_EQ(s.count, 2u);  // the diff, not the cumulative count
  EXPECT_DOUBLE_EQ(s.sum, 100.7);
  ASSERT_EQ(s.buckets.size(), 3u);
  EXPECT_EQ(s.buckets[0].second, 1u);  // 0.7 -> (0,1]
  EXPECT_EQ(s.buckets[1].second, 0u);
  EXPECT_EQ(s.buckets[2].second, 1u);  // 100 -> overflow
  // min/max are last-write state, not diffs: the receiver overwrites.
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 100.0);

  EXPECT_TRUE(r.snapshot_delta(base).histograms.empty());
}

TEST(ObsDelta, CurrentOutParamIsTheNextBaseline) {
  Registry r;
  r.counter("a").add(7);
  obs::Snapshot base;
  obs::Snapshot current;
  (void)r.snapshot_delta(base, &current);
  // `current` holds the cumulative snapshot the delta was computed
  // against — handing it back avoids racing updates that land between
  // delta computation and a second snapshot() call.
  ASSERT_EQ(current.counters.size(), 1u);
  EXPECT_EQ(current.counters[0].value, 7u);
  r.counter("a").add(1);
  const obs::Snapshot d = r.snapshot_delta(current);
  ASSERT_EQ(d.counters.size(), 1u);
  EXPECT_EQ(d.counters[0].value, 1u);
}

TEST(ObsExport, JsonGolden) {
  const std::string expected =
      "{\n"
      "  \"counters\": {\n"
      "    \"ccg.test.requests\": 3\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"ccg.test.depth\": 2.5\n"
      "  },\n"
      "  \"histograms\": {\n"
      // p50/p90/p99 by hand: rank q*3 with one sample in (0,1] and two in
      // the overflow bucket interpolated over (2, max=100].
      "    \"ccg.test.latency\": {\"count\": 3, \"sum\": 103.5, \"min\": 0.5,"
      " \"max\": 100, \"p50\": 26.5, \"p90\": 85.3, \"p99\": 98.53,"
      " \"buckets\": [{\"le\": 1, \"n\": 1}, {\"le\": \"+Inf\", \"n\": 2}]}\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(obs::to_json(golden_registry().snapshot()), expected);
}

TEST(ObsExport, SummaryTextSkipsZeroInstruments) {
  Registry registry;
  registry.counter("test.zero");
  registry.counter("test.nonzero").add(7);
  registry.histogram("test.empty");
  const std::string text = obs::summary_text(registry.snapshot());
  EXPECT_EQ(text.find("test.zero"), std::string::npos);
  EXPECT_EQ(text.find("test.empty"), std::string::npos);
  EXPECT_NE(text.find("test.nonzero"), std::string::npos);
}

// --- spans & trace ring ------------------------------------------------------

TEST(ObsSpan, MacroFeedsLatencyHistogram) {
  obs::Histogram& h = obs::span_histogram("ccg.test.spanned");
  const std::uint64_t before = h.count();
  for (int i = 0; i < 3; ++i) {
    CCG_OBS_SPAN("ccg.test.spanned");
  }
  EXPECT_EQ(h.count(), before + 3);
  EXPECT_GT(h.sum(), 0.0);
}

TEST(ObsSpan, TraceRingKeepsMostRecentEvents) {
  obs::TraceRing& ring = obs::TraceRing::global();
  ring.enable(2);
  for (int i = 0; i < 3; ++i) {
    CCG_OBS_SPAN("ccg.test.traced");
  }
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "ccg.test.traced");
  EXPECT_EQ(ring.dropped(), 1u);
  EXPECT_LE(events[0].start_ns, events[1].start_ns);
  ring.disable();
}

// --- end-to-end instrumentation ----------------------------------------------

TEST(ObsIntegration, AnalyticsServiceRecordsEveryStage) {
  Registry& registry = Registry::global();
  registry.reset();

  Cluster cluster(presets::tiny(), 7);
  TelemetryHub hub(ProviderProfile::azure(), 7);
  SimulationDriver driver(cluster, hub);
  const auto ips = cluster.monitored_ips();
  std::size_t reports = 0;
  AnalyticsService service(
      {.graph = {.facet = GraphFacet::kIp, .window_minutes = 60},
       .training_windows = 3,
       .spectral = {.rank = 8}},
      {ips.begin(), ips.end()}, [&](const WindowReport&) { ++reports; });
  hub.set_sink(&service);
  driver.run(TimeWindow::minutes(0, 5 * 60));
  service.flush();
  ASSERT_EQ(reports, 5u);

  // Every pipeline stage must have fired: 5 windows total, 3 of them
  // training-only (no spectral scoring).
  for (const char* stage :
       {"ccg.analytics.stage.build.seconds", "ccg.analytics.stage.edges.seconds",
        "ccg.analytics.stage.tracker.seconds",
        "ccg.analytics.stage.patterns.seconds",
        "ccg.analytics.stage.spectral.seconds",
        "ccg.analytics.spectral_fit.seconds"}) {
    EXPECT_GT(registry.histogram(stage).count(), 0u) << stage;
  }
  EXPECT_EQ(registry.counter("ccg.analytics.windows").value(), 5u);
  EXPECT_EQ(registry.counter("ccg.analytics.training_windows").value(), 3u);
  EXPECT_EQ(registry.histogram("ccg.analytics.stage.spectral.seconds").count(), 2u);
  EXPECT_EQ(registry.histogram("ccg.analytics.stage.tracker.seconds").count(), 5u);
  // The telemetry hub metered the same stream it handed to the service.
  EXPECT_GT(registry.counter("ccg.telemetry.records").value(), 0u);
  EXPECT_EQ(registry.counter("ccg.telemetry.batches").value(), 300u);
  EXPECT_GT(registry.histogram("ccg.telemetry.flush.seconds").count(), 0u);
}

TEST(ObsIntegration, ShardedPipelinePopulatesPerShardMetrics) {
  Registry& registry = Registry::global();
  registry.reset();

  Rng rng(13);
  std::unordered_set<IpAddr> monitored;
  for (std::uint32_t i = 0; i < 64; ++i) monitored.insert(IpAddr(0x0A000001 + i));
  ShardedGraphPipeline pipeline(
      {.shards = 2,
       .shard_batch_size = 64,
       .graph = {.facet = GraphFacet::kIp, .window_minutes = 60}},
      monitored);

  std::uint64_t total = 0;
  for (std::int64_t m = 0; m < 60; ++m) {
    std::vector<ConnectionSummary> batch;
    for (int i = 0; i < 200; ++i) {
      const IpAddr local(0x0A000001 + static_cast<std::uint32_t>(rng.uniform(32)));
      IpAddr remote(0x0A000001 + static_cast<std::uint32_t>(rng.uniform(32)));
      if (remote == local) remote = IpAddr(remote.bits() + 1);
      batch.push_back(ConnectionSummary{
          .time = MinuteBucket(m),
          .flow = FlowKey{.local_ip = local,
                          .local_port = static_cast<std::uint16_t>(
                              33000 + rng.uniform(1000)),
                          .remote_ip = remote,
                          .remote_port = 443,
                          .protocol = Protocol::kTcp},
          .counters = TrafficCounters{.packets_sent = 1, .bytes_sent = 1000}});
    }
    total += batch.size();
    pipeline.on_batch(MinuteBucket(m), batch);
  }
  const auto graphs = pipeline.finish();
  ASSERT_EQ(graphs.size(), 1u);

  EXPECT_EQ(registry.counter("ccg.pipeline.records").value(), total);
  EXPECT_EQ(registry.counter("ccg.pipeline.batches").value(), 60u);
  const std::uint64_t shard_sum =
      registry.counter("ccg.pipeline.shard.0.records").value() +
      registry.counter("ccg.pipeline.shard.1.records").value();
  EXPECT_EQ(shard_sum, total);
  EXPECT_GT(registry.gauge("ccg.pipeline.shard.0.queue_depth_hwm").value(), 0.0);
  EXPECT_GT(registry.histogram("ccg.pipeline.enqueue_stall.seconds").count(), 0u);
  EXPECT_GT(registry.histogram("ccg.pipeline.batch_build.seconds").count(), 0u);
  EXPECT_EQ(registry.histogram("ccg.pipeline.window_merge.seconds").count(), 1u);

  // The stats() accessor reads the same totals, race-free.
  EXPECT_EQ(pipeline.stats().records, total);
  EXPECT_EQ(pipeline.stats().batches, 60u);
}

}  // namespace
}  // namespace ccg

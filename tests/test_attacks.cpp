#include "ccg/workload/attacks.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "ccg/workload/presets.hpp"

namespace ccg {
namespace {

class AttacksTest : public ::testing::Test {
 protected:
  Cluster cluster_{presets::tiny(), 101};
};

TEST_F(AttacksTest, ScanProbesManyTargetsFromOneSource) {
  ScanAttack scan({.active = TimeWindow::minutes(5, 10),
                   .targets_per_minute = 20,
                   .ports_per_target = 2},
                  7);
  std::vector<FlowActivity> out;
  scan.inject(cluster_, MinuteBucket(0), out);
  EXPECT_TRUE(out.empty()) << "inactive before window";

  scan.inject(cluster_, MinuteBucket(5), out);
  ASSERT_FALSE(out.empty());
  ASSERT_TRUE(scan.compromised().has_value());

  std::unordered_set<IpAddr> targets;
  for (const auto& f : out) {
    EXPECT_TRUE(f.malicious);
    EXPECT_EQ(f.flow.local_ip, *scan.compromised());
    EXPECT_LE(f.counters.bytes_sent, 64u);  // SYN probes are tiny
    targets.insert(f.flow.remote_ip);
  }
  EXPECT_GT(targets.size(), 5u);

  out.clear();
  scan.inject(cluster_, MinuteBucket(15), out);
  EXPECT_TRUE(out.empty()) << "inactive after window";
}

TEST_F(AttacksTest, LateralMovementGrowsCompromisedSet) {
  LateralMovementAttack lateral(
      {.active = TimeWindow::minutes(0, 30), .spread_per_minute = 1.0}, 11);
  std::vector<FlowActivity> out;
  for (int minute = 0; minute < 30; ++minute) {
    lateral.inject(cluster_, MinuteBucket(minute), out);
  }
  EXPECT_GT(lateral.compromised_set().size(), 1u);
  EXPECT_LE(lateral.compromised_set().size(), cluster_.monitored_ips().size());
  for (const auto& f : out) {
    EXPECT_TRUE(f.malicious);
    EXPECT_EQ(f.flow.remote_port, 22);
  }
  // The compromised set contains no duplicates.
  std::unordered_set<IpAddr> unique(lateral.compromised_set().begin(),
                                    lateral.compromised_set().end());
  EXPECT_EQ(unique.size(), lateral.compromised_set().size());
}

TEST_F(AttacksTest, ExfiltrationMovesBigBytesToOneExternalSink) {
  ExfiltrationAttack exfil(
      {.active = TimeWindow::minutes(0, 5), .mbytes_per_minute = 10.0}, 13);
  std::vector<FlowActivity> out;
  for (int minute = 0; minute < 5; ++minute) {
    exfil.inject(cluster_, MinuteBucket(minute), out);
  }
  ASSERT_FALSE(out.empty());
  std::uint64_t total = 0;
  std::unordered_set<IpAddr> sinks, sources;
  for (const auto& f : out) {
    EXPECT_TRUE(f.malicious);
    EXPECT_EQ(f.flow.remote_port, 443);
    total += f.counters.bytes_sent;
    sinks.insert(f.flow.remote_ip);
    sources.insert(f.flow.local_ip);
  }
  EXPECT_EQ(sinks.size(), 1u);
  EXPECT_EQ(sources.size(), 1u);
  EXPECT_GT(total, 5u * 5'000'000u);  // ~10MB/min for 5 min, generous floor
  // Sink is outside the monitored space.
  EXPECT_TRUE(cluster_.spec().external_space.contains(*sinks.begin()));
}

TEST_F(AttacksTest, TunnelExfiltrationRidesTheAllowedChannel) {
  TunnelExfiltrationAttack tunnel(
      {.active = TimeWindow::minutes(0, 5),
       .source_role = "web",
       .sink_role = "api",
       .sink_port = 8080,
       .mbytes_per_minute = 5.0},
      29);
  std::vector<FlowActivity> out;
  for (int minute = 0; minute < 5; ++minute) {
    tunnel.inject(cluster_, MinuteBucket(minute), out);
  }
  ASSERT_FALSE(out.empty());
  std::unordered_set<IpAddr> sources;
  std::uint64_t total = 0;
  for (const auto& f : out) {
    EXPECT_TRUE(f.malicious);
    EXPECT_EQ(cluster_.role_of(f.flow.local_ip), "web");
    EXPECT_EQ(cluster_.role_of(f.flow.remote_ip), "api");  // allowed channel
    EXPECT_EQ(f.flow.remote_port, 8080);
    sources.insert(f.flow.local_ip);
    total += f.counters.bytes_sent;
  }
  EXPECT_EQ(sources.size(), 1u);  // one breached instance
  EXPECT_GT(total, 5u * 2'500'000u);
}

TEST_F(AttacksTest, CodeChangeTouchesEveryRoleInstance) {
  CodeChangeScenario change({.active = TimeWindow::minutes(0, 30),
                             .role = "web",
                             .new_server_role = "db",
                             .server_port = 5432,
                             .connections_per_minute = 5.0},
                            17);
  std::vector<FlowActivity> out;
  for (int minute = 0; minute < 30; ++minute) {
    change.inject(cluster_, MinuteBucket(minute), out);
  }
  ASSERT_FALSE(out.empty());
  std::unordered_set<IpAddr> clients;
  for (const auto& f : out) {
    EXPECT_FALSE(f.malicious) << "code changes are benign ground truth";
    EXPECT_EQ(cluster_.role_of(f.flow.local_ip), "web");
    EXPECT_EQ(cluster_.role_of(f.flow.remote_ip), "db");
    clients.insert(f.flow.local_ip);
  }
  // The defining property: the whole segment changes together.
  EXPECT_EQ(clients.size(), cluster_.ips_of_role("web").size());
}

TEST_F(AttacksTest, FlashCrowdAmplifiesExistingPatternsProportionally) {
  FlashCrowdScenario crowd(
      {.active = TimeWindow::minutes(0, 10), .role = "web", .multiplier = 4.0,
       .scope_roles = {}},
      19);
  std::vector<FlowActivity> out;
  for (int minute = 0; minute < 10; ++minute) {
    crowd.inject(cluster_, MinuteBucket(minute), out);
  }
  ASSERT_FALSE(out.empty());
  std::size_t inbound = 0, outbound = 0;
  for (const auto& f : out) {
    EXPECT_FALSE(f.malicious);
    const auto client = cluster_.role_of(f.flow.local_ip);
    const auto server = cluster_.role_of(f.flow.remote_ip);
    if (server == "web") ++inbound;       // client -> web surge
    if (client == "web") ++outbound;      // web -> api surge follows
    EXPECT_TRUE(server == "web" || client == "web");
  }
  EXPECT_GT(inbound, 0u);
  EXPECT_GT(outbound, 0u);
}

TEST_F(AttacksTest, InjectorsRespectActiveWindows) {
  FlashCrowdScenario crowd(
      {.active = TimeWindow::minutes(5, 1), .role = "web", .multiplier = 3.0,
       .scope_roles = {}},
      23);
  std::vector<FlowActivity> out;
  crowd.inject(cluster_, MinuteBucket(4), out);
  crowd.inject(cluster_, MinuteBucket(6), out);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace ccg

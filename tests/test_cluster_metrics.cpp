#include "ccg/segmentation/cluster_metrics.hpp"

#include <gtest/gtest.h>

#include "ccg/common/expect.hpp"

namespace ccg {
namespace {

TEST(CompareLabelings, IdenticalLabelingsScorePerfect) {
  const std::vector<std::uint32_t> labels{0, 0, 1, 1, 2, 2};
  const auto a = compare_labelings(labels, labels);
  EXPECT_DOUBLE_EQ(a.ari, 1.0);
  EXPECT_NEAR(a.nmi, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(a.purity, 1.0);
  EXPECT_EQ(a.items, 6u);
}

TEST(CompareLabelings, PermutedLabelsStillPerfect) {
  // Cluster ids are arbitrary: {0,1,2} renamed to {5,9,1}.
  const std::vector<std::uint32_t> truth{0, 0, 1, 1, 2, 2};
  const std::vector<std::uint32_t> renamed{5, 5, 9, 9, 1, 1};
  const auto a = compare_labelings(renamed, truth);
  EXPECT_DOUBLE_EQ(a.ari, 1.0);
  EXPECT_NEAR(a.nmi, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(a.purity, 1.0);
}

TEST(CompareLabelings, AllInOneClusterAgainstSplit) {
  const std::vector<std::uint32_t> one(8, 0);
  const std::vector<std::uint32_t> truth{0, 0, 0, 0, 1, 1, 1, 1};
  const auto a = compare_labelings(one, truth);
  EXPECT_NEAR(a.ari, 0.0, 1e-12);  // no better than chance
  EXPECT_NEAR(a.nmi, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(a.purity, 0.5);
}

TEST(CompareLabelings, KnownPartialAgreement) {
  // Classic ARI example: one item swapped between two clusters of 3.
  const std::vector<std::uint32_t> truth{0, 0, 0, 1, 1, 1};
  const std::vector<std::uint32_t> pred{0, 0, 1, 1, 1, 1};
  const auto a = compare_labelings(pred, truth);
  EXPECT_GT(a.ari, 0.0);
  EXPECT_LT(a.ari, 1.0);
  EXPECT_NEAR(a.purity, 5.0 / 6.0, 1e-12);
}

TEST(CompareLabelings, MaskExcludesItems) {
  const std::vector<std::uint32_t> pred{0, 0, 1, 9};
  const std::vector<std::uint32_t> truth{0, 0, 1, 2};
  const std::vector<bool> mask{true, true, true, false};
  const auto a = compare_labelings(pred, truth, mask);
  EXPECT_EQ(a.items, 3u);
  EXPECT_DOUBLE_EQ(a.ari, 1.0);
}

TEST(CompareLabelings, EmptyMaskMeansAll) {
  const std::vector<std::uint32_t> pred{0, 1};
  const std::vector<std::uint32_t> truth{1, 0};
  const auto a = compare_labelings(pred, truth);
  EXPECT_EQ(a.items, 2u);
  EXPECT_DOUBLE_EQ(a.ari, 1.0);  // swap of singleton labels is identical
}

TEST(CompareLabelings, SizeMismatchThrows) {
  EXPECT_THROW(compare_labelings({0, 1}, {0}), ContractViolation);
  EXPECT_THROW(compare_labelings({0, 1}, {0, 1}, {true}), ContractViolation);
}

TEST(CompareLabelings, FullyMaskedIsEmptyResult) {
  const auto a = compare_labelings({0, 1}, {0, 1}, {false, false});
  EXPECT_EQ(a.items, 0u);
  EXPECT_EQ(a.ari, 0.0);
}

TEST(GroundTruthLabels, MapsRolesToNodeIds) {
  CommGraph g;
  const NodeId a = g.add_node(NodeKey::for_ip(IpAddr(1u)));
  const NodeId b = g.add_node(NodeKey::for_ip(IpAddr(2u)));
  const NodeId c = g.add_node(NodeKey::for_ip(IpAddr(3u)));
  const NodeId other = g.add_node(NodeKey::collapsed());
  const NodeId unknown = g.add_node(NodeKey::for_ip(IpAddr(99u)));

  std::unordered_map<IpAddr, std::string> roles{
      {IpAddr(1u), "web"}, {IpAddr(2u), "web"}, {IpAddr(3u), "db"}};
  const auto gt = ground_truth_labels(g, roles);
  ASSERT_EQ(gt.labels.size(), 5u);
  EXPECT_TRUE(gt.mask[a]);
  EXPECT_TRUE(gt.mask[b]);
  EXPECT_TRUE(gt.mask[c]);
  EXPECT_FALSE(gt.mask[other]);
  EXPECT_FALSE(gt.mask[unknown]);
  EXPECT_EQ(gt.labels[a], gt.labels[b]);
  EXPECT_NE(gt.labels[a], gt.labels[c]);
  EXPECT_EQ(gt.role_names.size(), 2u);
}

TEST(GroundTruthLabels, IpPortNodesInheritIpRole) {
  CommGraph g;
  const NodeId n = g.add_node(NodeKey::for_ip_port(IpAddr(1u), 443));
  std::unordered_map<IpAddr, std::string> roles{{IpAddr(1u), "web"}};
  const auto gt = ground_truth_labels(g, roles);
  EXPECT_TRUE(gt.mask[n]);
}

}  // namespace
}  // namespace ccg

#include "ccg/graph/builder.hpp"

#include <gtest/gtest.h>

#include "ccg/common/expect.hpp"
#include "ccg/graph/comm_graph.hpp"

namespace ccg {
namespace {

ConnectionSummary record(std::int64_t minute, IpAddr local, std::uint16_t lport,
                         IpAddr remote, std::uint16_t rport,
                         std::uint64_t bytes_sent, std::uint64_t bytes_rcvd) {
  return ConnectionSummary{
      .time = MinuteBucket(minute),
      .flow = FlowKey{.local_ip = local, .local_port = lport,
                      .remote_ip = remote, .remote_port = rport,
                      .protocol = Protocol::kTcp},
      .counters = TrafficCounters{.packets_sent = bytes_sent / 1000 + 1,
                                  .packets_rcvd = bytes_rcvd / 1000 + 1,
                                  .bytes_sent = bytes_sent,
                                  .bytes_rcvd = bytes_rcvd}};
}

const IpAddr kA(0x0A000001), kB(0x0A000002), kC(0x0A000003), kX(0x64000001);

TEST(CommGraph, AddNodeIsIdempotent) {
  CommGraph g;
  const NodeId a = g.add_node(NodeKey::for_ip(kA));
  EXPECT_EQ(g.add_node(NodeKey::for_ip(kA)), a);
  EXPECT_EQ(g.node_count(), 1u);
  EXPECT_EQ(g.find_node(NodeKey::for_ip(kA)), a);
  EXPECT_FALSE(g.find_node(NodeKey::for_ip(kB)).has_value());
}

TEST(CommGraph, EdgeVolumeAccumulatesAndCanonicalizes) {
  CommGraph g;
  const NodeId a = g.add_node(NodeKey::for_ip(kA));
  const NodeId b = g.add_node(NodeKey::for_ip(kB));
  g.add_edge_volume(a, b, 100, 50, 1, 1, 1, 1);
  // Reverse orientation must land on the same edge, direction-swapped.
  g.add_edge_volume(b, a, 30, 10, 1, 1, 1, 1);

  EXPECT_EQ(g.edge_count(), 1u);
  const Edge& e = g.edge(0);
  EXPECT_EQ(e.a, a);
  EXPECT_EQ(e.b, b);
  EXPECT_EQ(e.stats.bytes_ab, 110u);  // 100 + reversed 10
  EXPECT_EQ(e.stats.bytes_ba, 80u);   // 50 + reversed 30
  EXPECT_EQ(e.stats.bytes(), 190u);
  EXPECT_EQ(g.total_bytes(), 190u);
  EXPECT_EQ(g.node_stats(a).bytes, 190u);
  EXPECT_EQ(g.node_stats(b).bytes, 190u);
}

TEST(CommGraph, RejectsSelfEdges) {
  CommGraph g;
  const NodeId a = g.add_node(NodeKey::for_ip(kA));
  EXPECT_THROW(g.add_edge_volume(a, a, 1, 1, 1, 1, 1, 1), ContractViolation);
}

TEST(CommGraph, NeighborsAndDegree) {
  CommGraph g;
  const NodeId a = g.add_node(NodeKey::for_ip(kA));
  const NodeId b = g.add_node(NodeKey::for_ip(kB));
  const NodeId c = g.add_node(NodeKey::for_ip(kC));
  g.add_edge_volume(a, b, 1, 0, 1, 0, 1, 1);
  g.add_edge_volume(a, c, 1, 0, 1, 0, 1, 1);
  EXPECT_EQ(g.degree(a), 2u);
  EXPECT_EQ(g.degree(b), 1u);
  EXPECT_TRUE(g.find_edge(a, c).has_value());
  EXPECT_TRUE(g.find_edge(c, a).has_value());
  EXPECT_FALSE(g.find_edge(b, c).has_value());
}

TEST(CommGraph, DenseByteMatrixIsSymmetric) {
  CommGraph g;
  const NodeId a = g.add_node(NodeKey::for_ip(kA));
  const NodeId b = g.add_node(NodeKey::for_ip(kB));
  g.add_edge_volume(a, b, 70, 30, 1, 1, 1, 1);
  const auto m = g.dense_byte_matrix();
  ASSERT_EQ(m.size(), 4u);
  EXPECT_EQ(m[0 * 2 + 1], 100.0);
  EXPECT_EQ(m[1 * 2 + 0], 100.0);
  EXPECT_EQ(m[0], 0.0);
  EXPECT_THROW(g.dense_byte_matrix(1), ContractViolation);
}

TEST(GraphBuilder, DeduplicatesBothSidesOfOneConversation) {
  GraphBuilder builder({.facet = GraphFacet::kIp, .window_minutes = 60}, {kA, kB});
  // The same conversation reported by both endpoints.
  builder.ingest(record(0, kA, 40000, kB, 443, 500, 1000));
  builder.ingest(record(0, kB, 443, kA, 40000, 1000, 500));
  builder.flush();

  ASSERT_EQ(builder.graphs().size(), 1u);
  const CommGraph& g = builder.graphs()[0];
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.edge(0).stats.bytes(), 1500u);  // NOT 3000: deduplicated
  EXPECT_EQ(g.edge(0).stats.connection_minutes, 1u);
}

TEST(GraphBuilder, OneSidedFlowsStillCounted) {
  GraphBuilder builder({.facet = GraphFacet::kIp, .window_minutes = 60}, {kA});
  builder.ingest(record(0, kA, 40000, kX, 443, 200, 800));  // internet peer
  builder.flush();
  const CommGraph& g = builder.graphs()[0];
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.edge(0).stats.bytes(), 1000u);
  // Monitored flag set only for the local VM.
  const NodeId a = *g.find_node(NodeKey::for_ip(kA));
  const NodeId x = *g.find_node(NodeKey::for_ip(kX));
  EXPECT_TRUE(g.node_stats(a).monitored);
  EXPECT_FALSE(g.node_stats(x).monitored);
}

TEST(GraphBuilder, WindowsRollAtAlignedBoundaries) {
  GraphBuilder builder({.facet = GraphFacet::kIp, .window_minutes = 60}, {kA, kB});
  builder.ingest(record(10, kA, 40000, kB, 443, 100, 0));
  builder.ingest(record(59, kA, 40000, kB, 443, 100, 0));
  builder.ingest(record(60, kA, 40000, kB, 443, 100, 0));  // next hour
  builder.flush();

  ASSERT_EQ(builder.graphs().size(), 2u);
  EXPECT_EQ(builder.graphs()[0].window(), TimeWindow::hour(0));
  EXPECT_EQ(builder.graphs()[1].window(), TimeWindow::hour(1));
  EXPECT_EQ(builder.graphs()[0].edge(0).stats.bytes(), 200u);
  EXPECT_EQ(builder.graphs()[1].edge(0).stats.bytes(), 100u);
}

TEST(GraphBuilder, ActiveMinutesAndConnectionMinutes) {
  GraphBuilder builder({.facet = GraphFacet::kIp, .window_minutes = 60}, {kA, kB});
  builder.ingest(record(0, kA, 40000, kB, 443, 100, 0));
  builder.ingest(record(1, kA, 40000, kB, 443, 100, 0));
  builder.ingest(record(1, kA, 40001, kB, 443, 100, 0));  // second flow, same pair
  builder.ingest(record(5, kA, 40000, kB, 443, 100, 0));
  builder.flush();
  const Edge& e = builder.graphs()[0].edge(0);
  EXPECT_EQ(e.stats.active_minutes, 3u);       // minutes 0, 1, 5
  EXPECT_EQ(e.stats.connection_minutes, 4u);   // four flow-minute records
}

TEST(GraphBuilder, IpPortFacetSplitsServices) {
  GraphBuilder builder({.facet = GraphFacet::kIpPort, .window_minutes = 60}, {kA, kB});
  builder.ingest(record(0, kA, 40000, kB, 443, 100, 0));
  builder.ingest(record(0, kA, 40000, kB, 8080, 100, 0));
  builder.flush();
  const CommGraph& g = builder.graphs()[0];
  // (A,40000), (B,443), (B,8080): the IP-port graph is strictly larger.
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
}

TEST(GraphBuilder, ServiceFacetKeepsServerIdentityOnly) {
  GraphBuilder builder({.facet = GraphFacet::kService, .window_minutes = 60},
                       {kA, kB});
  // kA runs two services (443, 8080); kB's client side uses ephemeral
  // ports that must NOT become nodes.
  builder.ingest(record(0, kB, 41000, kA, 443, 100, 200));
  builder.ingest(record(0, kA, 443, kB, 41000, 200, 100));
  builder.ingest(record(0, kB, 42000, kA, 8080, 100, 200));
  builder.ingest(record(0, kA, 8080, kB, 42000, 200, 100));
  builder.flush();
  const CommGraph& g = builder.graphs()[0];

  // Nodes: kB (client, IP-level), (kA, 443), (kA, 8080).
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_TRUE(g.find_node(NodeKey::for_ip(kB)).has_value());
  EXPECT_TRUE(g.find_node(NodeKey::for_ip_port(kA, 443)).has_value());
  EXPECT_TRUE(g.find_node(NodeKey::for_ip_port(kA, 8080)).has_value());
  EXPECT_FALSE(g.find_node(NodeKey::for_ip(kA)).has_value());
  EXPECT_EQ(g.edge_count(), 2u);
  // Both sides' reports still deduplicate into one conversation per edge.
  EXPECT_EQ(g.total_bytes(), 600u);
}

TEST(GraphBuilder, ServiceFacetSplitsMultiRoleVm) {
  // kA is a server on 443 AND a client of kC: it appears as two nodes —
  // the paper's "resources may have multiple roles".
  GraphBuilder builder({.facet = GraphFacet::kService, .window_minutes = 60},
                       {kA, kB, kC});
  builder.ingest(record(0, kB, 41000, kA, 443, 100, 0));
  builder.ingest(record(0, kA, 39000, kC, 5432, 50, 0));
  builder.flush();
  const CommGraph& g = builder.graphs()[0];
  EXPECT_TRUE(g.find_node(NodeKey::for_ip_port(kA, 443)).has_value());
  EXPECT_TRUE(g.find_node(NodeKey::for_ip(kA)).has_value());  // client half
  EXPECT_EQ(g.node_count(), 4u);
}

TEST(GraphBuilder, CollapsesSmallRemotePeersOnly) {
  GraphBuilder builder({.facet = GraphFacet::kIp,
                        .window_minutes = 60,
                        .collapse_threshold = 0.01},
                       {kA});
  // One heavy remote peer (active all hour) and 50 tiny one-shot ones. A
  // node survives if it clears the threshold on bytes, packets OR
  // connection-minutes, so the tail must be small on all three axes.
  for (std::int64_t m = 0; m < 60; ++m) {
    builder.ingest(record(m, kA, 40000, kB, 443, 1'000'000, 0));
  }
  for (std::uint32_t i = 0; i < 50; ++i) {
    builder.ingest(record(0, kA, 40000, IpAddr(0x64000100 + i), 443, 10, 0));
  }
  builder.flush();
  const CommGraph& g = builder.graphs()[0];
  // kA (monitored, exempt), kB (heavy), <other> (50 collapsed).
  EXPECT_EQ(g.node_count(), 3u);
  const auto other = g.find_node(NodeKey::collapsed());
  ASSERT_TRUE(other.has_value());
  EXPECT_EQ(g.node_stats(*other).collapsed_members, 50u);
}

TEST(GraphBuilder, CollapseKeepsMonitoredNodes) {
  GraphBuilder builder({.facet = GraphFacet::kIp,
                        .window_minutes = 60,
                        .collapse_threshold = 0.4},
                       {kA, kB, kC});
  for (std::int64_t m = 0; m < 10; ++m) {
    builder.ingest(record(m, kA, 40000, kB, 443, 1'000'000, 0));
  }
  builder.ingest(record(0, kA, 40001, kC, 443, 10, 0));  // kC tiny but monitored
  builder.flush();
  const CommGraph& g = builder.graphs()[0];
  EXPECT_TRUE(g.find_node(NodeKey::for_ip(kC)).has_value());
  EXPECT_FALSE(g.find_node(NodeKey::collapsed()).has_value());
}

TEST(GraphBuilder, TracksInitiatorDirectionAndServerPort) {
  GraphBuilder builder({.facet = GraphFacet::kIp, .window_minutes = 60}, {kA, kB});
  // Client kA -> server kB:443, both sides report.
  builder.ingest(record(0, kA, 40000, kB, 443, 500, 1000));
  builder.ingest(record(0, kB, 443, kA, 40000, 1000, 500));
  builder.ingest(record(1, kA, 40000, kB, 443, 500, 1000));
  builder.ingest(record(1, kB, 443, kA, 40000, 1000, 500));
  builder.flush();
  const CommGraph& g = builder.graphs()[0];
  const NodeId a = *g.find_node(NodeKey::for_ip(kA));
  const NodeId b = *g.find_node(NodeKey::for_ip(kB));
  const EdgeId e = *g.find_edge(a, b);
  EXPECT_EQ(g.edge_role(a, e), CommGraph::EdgeRole::kInitiator);
  EXPECT_EQ(g.edge_role(b, e), CommGraph::EdgeRole::kResponder);
  EXPECT_EQ(g.edge(e).stats.server_port_hint, 443);
}

TEST(GraphBuilder, InitiatorBitOverridesPortHeuristic) {
  // gRPC-style service port (50051) in the ephemeral range: only the
  // initiator bit keeps the direction straight on the server-side record.
  GraphBuilder builder({.facet = GraphFacet::kIp, .window_minutes = 60}, {kA, kB});
  auto client_side = record(0, kA, 41000, kB, 50051, 100, 200);
  client_side.initiator = Initiator::kLocal;
  auto server_side = record(0, kB, 50051, kA, 41000, 200, 100);
  server_side.initiator = Initiator::kRemote;
  builder.ingest(client_side);
  builder.ingest(server_side);
  builder.flush();
  const CommGraph& g = builder.graphs()[0];
  const NodeId a = *g.find_node(NodeKey::for_ip(kA));
  const EdgeId e = 0;
  EXPECT_EQ(g.edge_role(a, e), CommGraph::EdgeRole::kInitiator);
  EXPECT_EQ(g.edge(e).stats.server_port_hint, 50051);
}

TEST(GraphBuilder, MergeGraphsEqualsSingleBuilder) {
  const GraphBuildConfig config{.facet = GraphFacet::kIp, .window_minutes = 60};
  GraphBuilder whole(config, {kA, kB, kC});
  GraphBuilder part1(config, {kA, kB, kC});
  GraphBuilder part2(config, {kA, kB, kC});

  const auto r1 = record(0, kA, 40000, kB, 443, 500, 100);
  const auto r2 = record(0, kA, 40000, kC, 443, 300, 50);
  whole.ingest(r1);
  whole.ingest(r2);
  part1.ingest(r1);  // edge A-B in shard 1
  part2.ingest(r2);  // edge A-C in shard 2
  whole.flush();
  part1.flush();
  part2.flush();

  std::vector<CommGraph> parts;
  parts.push_back(part1.graphs()[0]);
  parts.push_back(part2.graphs()[0]);
  const CommGraph merged = merge_graphs(parts);
  const CommGraph& reference = whole.graphs()[0];

  EXPECT_EQ(merged.node_count(), reference.node_count());
  EXPECT_EQ(merged.edge_count(), reference.edge_count());
  EXPECT_EQ(merged.total_bytes(), reference.total_bytes());
}

TEST(CollapseHeavyHitters, PostHocMatchesBuilderCollapse) {
  const std::unordered_set<IpAddr> monitored{kA};
  GraphBuilder with({.facet = GraphFacet::kIp,
                     .window_minutes = 60,
                     .collapse_threshold = 0.02},
                    monitored);
  GraphBuilder without({.facet = GraphFacet::kIp, .window_minutes = 60}, monitored);
  for (std::int64_t m = 0; m < 60; ++m) {
    const auto heavy = record(m, kA, 40000, IpAddr(0x64000200), 443, 1'000'000, 0);
    with.ingest(heavy);
    without.ingest(heavy);
  }
  for (std::uint32_t i = 1; i < 30; ++i) {
    const auto r = record(59, kA, 40000, IpAddr(0x64000200 + i), 443, 10, 0);
    with.ingest(r);
    without.ingest(r);
  }
  with.flush();
  without.flush();
  const CommGraph post = collapse_heavy_hitters(without.graphs()[0], 0.02);
  EXPECT_EQ(post.node_count(), with.graphs()[0].node_count());
  EXPECT_EQ(post.total_bytes(), with.graphs()[0].total_bytes());
}

}  // namespace
}  // namespace ccg

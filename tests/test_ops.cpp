// OpsServer: the live ops endpoint behind `--ops-port`. Tests talk real
// HTTP over loopback TCP — ephemeral port, raw socket client — covering
// the four routes, the ready flip, HEAD truncation, and rejection paths.
#include "ccg/net/http.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

namespace ccg {
namespace {

/// Sends one raw request and reads to EOF (the server always closes).
std::string http_exchange(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::size_t off = 0;
  while (off < request.size()) {
    const ssize_t n = ::write(fd, request.data() + off, request.size() - off);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  std::string reply;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    reply.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return reply;
}

std::string get(std::uint16_t port, const std::string& path) {
  return http_exchange(port, "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n");
}

net::OpsHandlers test_handlers() {
  net::OpsHandlers handlers;
  handlers.metrics = [] {
    return std::string("# TYPE t_total counter\nt_total 1\n");
  };
  handlers.tracez = [] { return std::string("trace ring: off\n"); };
  return handlers;
}

TEST(OpsServer, ServesHealthMetricsAndTracez) {
  net::OpsServer server;
  ASSERT_TRUE(server.start(0, test_handlers()));
  ASSERT_NE(server.port(), 0);  // ephemeral port was resolved
  EXPECT_TRUE(server.running());

  const std::string health = get(server.port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(health.find("\r\n\r\nok\n"), std::string::npos);
  EXPECT_NE(health.find("Connection: close"), std::string::npos);
  EXPECT_NE(health.find("Content-Length: 3"), std::string::npos);

  const std::string metrics = get(server.port(), "/metrics");
  EXPECT_NE(
      metrics.find("Content-Type: text/plain; version=0.0.4; charset=utf-8"),
      std::string::npos);
  EXPECT_NE(metrics.find("t_total 1\n"), std::string::npos);

  const std::string tracez = get(server.port(), "/tracez");
  EXPECT_NE(tracez.find("trace ring: off"), std::string::npos);

  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(OpsServer, ReadyzFlipsWithSetReady) {
  net::OpsServer server;
  ASSERT_TRUE(server.start(0, test_handlers()));

  // Starts unready: a scrape before the pipeline is up must say so.
  std::string r = get(server.port(), "/readyz");
  EXPECT_NE(r.find("HTTP/1.1 503"), std::string::npos);
  EXPECT_NE(r.find("unready\n"), std::string::npos);

  server.set_ready(true);
  r = get(server.port(), "/readyz");
  EXPECT_NE(r.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(r.find("ready\n"), std::string::npos);

  server.set_ready(false);
  r = get(server.port(), "/readyz");
  EXPECT_NE(r.find("HTTP/1.1 503"), std::string::npos);
}

TEST(OpsServer, UnknownRouteIs404AndBadMethodIs405) {
  net::OpsServer server;
  ASSERT_TRUE(server.start(0, test_handlers()));

  EXPECT_NE(get(server.port(), "/nope").find("HTTP/1.1 404"),
            std::string::npos);

  const std::string post = http_exchange(
      server.port(), "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(post.find("HTTP/1.1 405"), std::string::npos);
}

TEST(OpsServer, HeadReturnsHeadersOnly) {
  net::OpsServer server;
  ASSERT_TRUE(server.start(0, test_handlers()));
  const std::string head = http_exchange(
      server.port(), "HEAD /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(head.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(head.find("Content-Length: 3"), std::string::npos);
  // The body is withheld; the headers still advertise its length.
  EXPECT_EQ(head.find("\r\n\r\nok\n"), std::string::npos);
  EXPECT_EQ(head.substr(head.size() - 4), "\r\n\r\n");
}

TEST(OpsServer, QueryStringsAreStripped) {
  net::OpsServer server;
  ASSERT_TRUE(server.start(0, test_handlers()));
  const std::string r = get(server.port(), "/healthz?verbose=1");
  EXPECT_NE(r.find("HTTP/1.1 200 OK"), std::string::npos);
}

TEST(OpsServer, MissingTracezHandlerIs404) {
  net::OpsServer server;
  net::OpsHandlers handlers;
  handlers.metrics = [] { return std::string("x 1\n"); };
  // no tracez handler
  ASSERT_TRUE(server.start(0, std::move(handlers)));
  EXPECT_NE(get(server.port(), "/tracez").find("HTTP/1.1 404"),
            std::string::npos);
}

TEST(OpsServer, RestartRebindsCleanly) {
  net::OpsServer server;
  ASSERT_TRUE(server.start(0, test_handlers()));
  const std::uint16_t first = server.port();
  server.stop();
  ASSERT_TRUE(server.start(first, test_handlers()));  // same port, fresh bind
  EXPECT_EQ(server.port(), first);
  EXPECT_NE(get(server.port(), "/healthz").find("200 OK"), std::string::npos);
  server.stop();
}

}  // namespace
}  // namespace ccg

#include "ccg/workload/cluster.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "ccg/common/expect.hpp"
#include "ccg/workload/presets.hpp"

namespace ccg {
namespace {

TEST(ClusterSpec, AllPresetsValidate) {
  for (const auto& spec : presets::paper_clusters()) {
    EXPECT_NO_THROW(spec.validate()) << spec.name;
  }
  EXPECT_NO_THROW(presets::tiny().validate());
}

TEST(ClusterSpec, Table1MonitoredCountsMatchPaper) {
  EXPECT_EQ(presets::portal().total_instances(false), 4u);
  EXPECT_EQ(presets::microservice_bench().total_instances(false), 16u);
  // Paper: 390 and 1400 — allow small calibration slack.
  const auto k8s = presets::k8s_paas().total_instances(false);
  EXPECT_NEAR(static_cast<double>(k8s), 390.0, 30.0);
  EXPECT_EQ(presets::kquery().total_instances(false), 1400u);
}

TEST(ClusterSpec, ValidationCatchesBadSpecs) {
  auto spec = presets::tiny();
  spec.patterns[0].server_port = 9999;  // web does not listen there
  EXPECT_THROW(spec.validate(), ContractViolation);

  spec = presets::tiny();
  spec.patterns[0].client_role = "nonexistent";
  EXPECT_THROW(spec.validate(), ContractViolation);

  spec = presets::tiny();
  spec.roles.push_back(spec.roles[0]);  // duplicate role name
  EXPECT_THROW(spec.validate(), ContractViolation);

  spec = presets::tiny();
  spec.roles[0].instance_count = 0;
  EXPECT_THROW(spec.validate(), ContractViolation);

  spec = presets::tiny();
  spec.patterns[0].fanout_fraction = 0.0;
  EXPECT_THROW(spec.validate(), ContractViolation);
}

TEST(Cluster, DeterministicForSameSeed) {
  Cluster a(presets::tiny(), 42);
  Cluster b(presets::tiny(), 42);
  std::vector<FlowActivity> fa, fb;
  for (int minute = 0; minute < 5; ++minute) {
    a.generate_minute(MinuteBucket(minute), fa);
    b.generate_minute(MinuteBucket(minute), fb);
  }
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t i = 0; i < fa.size(); ++i) {
    EXPECT_EQ(fa[i].flow, fb[i].flow);
    EXPECT_EQ(fa[i].counters, fb[i].counters);
  }
}

TEST(Cluster, DifferentSeedsDiffer) {
  Cluster a(presets::tiny(), 1);
  Cluster b(presets::tiny(), 2);
  std::vector<FlowActivity> fa, fb;
  a.generate_minute(MinuteBucket(0), fa);
  b.generate_minute(MinuteBucket(0), fb);
  bool differs = fa.size() != fb.size();
  for (std::size_t i = 0; !differs && i < fa.size(); ++i) {
    differs = !(fa[i].flow == fb[i].flow);
  }
  EXPECT_TRUE(differs);
}

TEST(Cluster, GroundTruthRolesCoverAllInstances) {
  Cluster cluster(presets::tiny(), 7);
  const auto roles = cluster.ground_truth_roles();
  EXPECT_EQ(roles.size(), presets::tiny().total_instances(true));
  EXPECT_EQ(cluster.monitored_count(), 6u);  // 2 web + 3 api + 1 db
  EXPECT_EQ(cluster.ips_of_role("web").size(), 2u);
  EXPECT_EQ(cluster.ips_of_role("api").size(), 3u);
  EXPECT_EQ(cluster.ips_of_role("nope").size(), 0u);

  for (const IpAddr ip : cluster.ips_of_role("web")) {
    EXPECT_EQ(cluster.role_of(ip), "web");
  }
  EXPECT_FALSE(cluster.role_of(IpAddr(0x01020304)).has_value());
}

TEST(Cluster, FlowsRespectTopology) {
  Cluster cluster(presets::tiny(), 11);
  std::vector<FlowActivity> flows;
  for (int minute = 0; minute < 10; ++minute) {
    cluster.generate_minute(MinuteBucket(minute), flows);
  }
  ASSERT_FALSE(flows.empty());
  for (const auto& f : flows) {
    const auto client_role = cluster.role_of(f.flow.local_ip);
    const auto server_role = cluster.role_of(f.flow.remote_ip);
    ASSERT_TRUE(client_role.has_value());
    ASSERT_TRUE(server_role.has_value());
    // Only the spec's pattern pairs may communicate.
    const bool legal = (*client_role == "client" && *server_role == "web") ||
                       (*client_role == "web" && *server_role == "api") ||
                       (*client_role == "api" && *server_role == "db");
    EXPECT_TRUE(legal) << *client_role << " -> " << *server_role;
    EXPECT_FALSE(f.malicious);
    EXPECT_GE(f.flow.local_port, 32768);  // clients use ephemeral ports
    EXPECT_GT(f.counters.bytes_sent, 0u);
  }
}

TEST(Cluster, ServerPortsMatchPattern) {
  Cluster cluster(presets::tiny(), 13);
  std::vector<FlowActivity> flows;
  cluster.generate_minute(MinuteBucket(0), flows);
  for (const auto& f : flows) {
    const auto server_role = cluster.role_of(f.flow.remote_ip);
    if (server_role == "web") EXPECT_EQ(f.flow.remote_port, 80);
    if (server_role == "api") EXPECT_EQ(f.flow.remote_port, 8080);
    if (server_role == "db") EXPECT_EQ(f.flow.remote_port, 5432);
  }
}

TEST(Cluster, ChurnReplacesInstancesAndKeepsRoleCounts) {
  auto spec = presets::tiny();
  spec.roles[1].churn_per_hour = 1.0;  // api churns aggressively
  Cluster cluster(spec, 17);
  const auto before = cluster.ips_of_role("api");

  std::size_t churned = 0;
  for (int minute = 0; minute < 600; ++minute) {
    churned += cluster.apply_churn(MinuteBucket(minute)).size();
  }
  EXPECT_GT(churned, 0u);
  const auto after = cluster.ips_of_role("api");
  EXPECT_EQ(after.size(), before.size());  // replacement, not shrinkage
  std::unordered_set<IpAddr> before_set(before.begin(), before.end());
  bool any_new = false;
  for (const IpAddr ip : after) any_new |= !before_set.contains(ip);
  EXPECT_TRUE(any_new);
  // Old IPs no longer resolve.
  for (const IpAddr ip : before) {
    if (std::find(after.begin(), after.end(), ip) == after.end()) {
      EXPECT_FALSE(cluster.role_of(ip).has_value());
    }
  }
}

TEST(Cluster, ExternalIpsComeFromExternalSpace) {
  Cluster cluster(presets::tiny(), 19);
  const auto& spec = cluster.spec();
  for (const IpAddr ip : cluster.ips_of_role("client")) {
    EXPECT_TRUE(spec.external_space.contains(ip));
    EXPECT_FALSE(spec.internal_space.contains(ip));
  }
  const IpAddr extra = cluster.allocate_external_ip();
  EXPECT_TRUE(spec.external_space.contains(extra));
}

TEST(Cluster, RateScaleScalesVolume) {
  Cluster low(presets::tiny(0.2), 23);
  Cluster high(presets::tiny(2.0), 23);
  std::vector<FlowActivity> fl, fh;
  for (int minute = 0; minute < 20; ++minute) {
    low.generate_minute(MinuteBucket(minute), fl);
    high.generate_minute(MinuteBucket(minute), fh);
  }
  EXPECT_GT(fh.size(), fl.size() * 5);
}

TEST(Cluster, PaperPresetsGenerateTraffic) {
  // Smoke test at tiny rate scale so it stays fast.
  for (const auto& spec : presets::paper_clusters(0.02)) {
    Cluster cluster(spec, 3);
    std::vector<FlowActivity> flows;
    cluster.generate_minute(MinuteBucket(0), flows);
    EXPECT_FALSE(flows.empty()) << spec.name;
  }
}

}  // namespace
}  // namespace ccg

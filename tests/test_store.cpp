// Snapshot store: append / range-scan round trips, crash-shaped failure
// modes (torn frames, stale or missing index), compaction, and the
// replay-equals-streaming contract the paper's counterfactual analyses
// depend on.
#include "ccg/store/store.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>

#include "ccg/analytics/service.hpp"
#include "ccg/graph/delta.hpp"
#include "ccg/workload/driver.hpp"
#include "ccg/workload/presets.hpp"

namespace ccg {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("ccg_store_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// Buffers a simulated telemetry stream so several sinks can consume the
/// exact same batches (a second simulation run would be a weaker test).
struct CaptureSink : TelemetrySink {
  std::vector<std::pair<MinuteBucket, std::vector<ConnectionSummary>>> batches;
  void on_batch(MinuteBucket time,
                const std::vector<ConnectionSummary>& batch) override {
    batches.emplace_back(time, batch);
  }
  void replay_into(TelemetrySink& sink) const {
    for (const auto& [time, batch] : batches) sink.on_batch(time, batch);
  }
};

struct Workload {
  CaptureSink stream;
  std::unordered_set<IpAddr> monitored;
};

Workload simulate(std::int64_t minutes, std::uint64_t seed) {
  Workload w;
  Cluster cluster(presets::tiny(), seed);
  TelemetryHub hub(ProviderProfile::azure(), seed);
  SimulationDriver driver(cluster, hub);
  hub.set_sink(&w.stream);
  driver.run(TimeWindow::minutes(0, minutes));
  const auto ips = cluster.monitored_ips();
  w.monitored = {ips.begin(), ips.end()};
  return w;
}

constexpr GraphBuildConfig kConfig{.facet = GraphFacet::kIp,
                                   .window_minutes = 5,
                                   .collapse_threshold = 0.001};

std::vector<CommGraph> build_windows(const Workload& w) {
  GraphBuilder builder(kConfig, w.monitored);
  w.stream.replay_into(builder);
  builder.flush();
  return builder.take_graphs();
}

std::vector<CommGraph> scan_all(const store::StoreReader& reader) {
  std::vector<CommGraph> out;
  auto range = reader.range();
  while (auto g = range.next()) out.push_back(std::move(*g));
  return out;
}

TEST(Store, AppendScanRoundTrip) {
  const auto dir = fresh_dir("roundtrip");
  const auto windows = build_windows(simulate(120, 7));
  ASSERT_GE(windows.size(), 20u);

  auto writer = store::StoreWriter::open(dir, {.keyframe_interval = 4});
  ASSERT_TRUE(writer.has_value());
  for (const auto& g : windows) ASSERT_TRUE(writer->append(g));
  writer->close();

  const store::StoreStats stats = writer->stats();
  EXPECT_EQ(stats.windows, windows.size());
  EXPECT_EQ(stats.keyframes, (windows.size() + 3) / 4);
  EXPECT_EQ(stats.keyframes + stats.deltas, stats.windows);
  EXPECT_GT(stats.bytes_on_disk, 0u);

  auto reader = store::StoreReader::open(dir);
  ASSERT_TRUE(reader.has_value());
  const auto loaded = scan_all(*reader);
  ASSERT_EQ(loaded.size(), windows.size());
  for (std::size_t i = 0; i < windows.size(); ++i) {
    ASSERT_TRUE(graphs_identical(windows[i], loaded[i])) << "window " << i;
  }
}

TEST(Store, RejectsOutOfOrderAppends) {
  const auto dir = fresh_dir("order");
  const auto windows = build_windows(simulate(30, 7));
  ASSERT_GE(windows.size(), 2u);
  auto writer = store::StoreWriter::open(dir);
  ASSERT_TRUE(writer.has_value());
  ASSERT_TRUE(writer->append(windows[1]));
  EXPECT_FALSE(writer->append(windows[0])) << "window_begin went backwards";
  EXPECT_FALSE(writer->append(windows[1])) << "duplicate window_begin";
}

TEST(Store, RangeQueriesAndPointLookup) {
  const auto dir = fresh_dir("range");
  const auto windows = build_windows(simulate(120, 11));
  ASSERT_GE(windows.size(), 12u);
  {
    auto writer = store::StoreWriter::open(dir, {.keyframe_interval = 5});
    ASSERT_TRUE(writer.has_value());
    for (const auto& g : windows) ASSERT_TRUE(writer->append(g));
  }
  auto reader = store::StoreReader::open(dir);
  ASSERT_TRUE(reader.has_value());

  // [t0, t1) on window_begin, mid-store, cutting across keyframe boundaries.
  const std::int64_t t0 = windows[3].window().begin().index();
  const std::int64_t t1 = windows[9].window().begin().index();
  auto range = reader->range(t0, t1);
  for (std::size_t i = 3; i < 9; ++i) {
    const auto g = range.next();
    ASSERT_TRUE(g.has_value()) << "window " << i;
    ASSERT_TRUE(graphs_identical(windows[i], *g)) << "window " << i;
  }
  EXPECT_FALSE(range.next().has_value());

  // Point lookup of a delta frame must roll forward from its keyframe.
  const auto point =
      reader->window_at(windows[7].window().begin().index());
  ASSERT_TRUE(point.has_value());
  EXPECT_TRUE(graphs_identical(windows[7], *point));
  EXPECT_FALSE(reader->window_at(-12345).has_value());
}

TEST(Store, ReopenStartsNewSegmentWithKeyframe) {
  const auto dir = fresh_dir("reopen");
  const auto windows = build_windows(simulate(120, 13));
  ASSERT_GE(windows.size(), 10u);
  const std::size_t half = windows.size() / 2;
  {
    auto writer = store::StoreWriter::open(dir, {.keyframe_interval = 8});
    ASSERT_TRUE(writer.has_value());
    for (std::size_t i = 0; i < half; ++i) ASSERT_TRUE(writer->append(windows[i]));
  }
  {
    auto writer = store::StoreWriter::open(dir, {.keyframe_interval = 8});
    ASSERT_TRUE(writer.has_value());
    for (std::size_t i = half; i < windows.size(); ++i) {
      ASSERT_TRUE(writer->append(windows[i]));
    }
  }
  auto reader = store::StoreReader::open(dir);
  ASSERT_TRUE(reader.has_value());
  const auto& entries = reader->entries();
  ASSERT_EQ(entries.size(), windows.size());
  // A reopened writer never touches the old segment (torn-tail safety), so
  // the second session begins a new segment and re-keyframes.
  EXPECT_EQ(entries[half].segment, entries[half - 1].segment + 1);
  EXPECT_EQ(entries[half].kind, store::FrameKind::kKeyframe);

  const auto loaded = scan_all(*reader);
  ASSERT_EQ(loaded.size(), windows.size());
  for (std::size_t i = 0; i < windows.size(); ++i) {
    ASSERT_TRUE(graphs_identical(windows[i], loaded[i])) << "window " << i;
  }
}

TEST(Store, IndexRebuildMatchesWrittenIndex) {
  const auto dir = fresh_dir("rebuild");
  const auto windows = build_windows(simulate(60, 17));
  {
    auto writer = store::StoreWriter::open(dir, {.keyframe_interval = 3});
    ASSERT_TRUE(writer.has_value());
    for (const auto& g : windows) ASSERT_TRUE(writer->append(g));
  }
  auto indexed = store::StoreReader::open(dir);
  ASSERT_TRUE(indexed.has_value());
  ASSERT_TRUE(fs::remove(fs::path(dir) / "index.ccgx"));
  auto scanned = store::StoreReader::open(dir);
  ASSERT_TRUE(scanned.has_value());

  ASSERT_EQ(indexed->entries().size(), scanned->entries().size());
  for (std::size_t i = 0; i < indexed->entries().size(); ++i) {
    const auto& a = indexed->entries()[i];
    const auto& b = scanned->entries()[i];
    EXPECT_EQ(a.window_begin, b.window_begin);
    EXPECT_EQ(a.segment, b.segment);
    EXPECT_EQ(a.offset, b.offset);
    EXPECT_EQ(a.length, b.length);
    EXPECT_EQ(a.kind, b.kind);
  }
}

TEST(Store, TornFrameTruncatesScanAtCorruption) {
  const auto dir = fresh_dir("torn");
  const auto windows = build_windows(simulate(90, 19));
  ASSERT_GE(windows.size(), 10u);
  {
    auto writer = store::StoreWriter::open(dir, {.keyframe_interval = 4});
    ASSERT_TRUE(writer.has_value());
    for (const auto& g : windows) ASSERT_TRUE(writer->append(g));
  }
  store::IndexEntry victim;
  std::string segment_file;
  {
    auto reader = store::StoreReader::open(dir);
    ASSERT_TRUE(reader.has_value());
    victim = reader->entries()[6];
    char name[32];
    std::snprintf(name, sizeof(name), "seg-%06u.ccgs", victim.segment);
    segment_file = (fs::path(dir) / name).string();
  }
  {
    // Flip one payload byte: the CRC must catch it.
    std::fstream f(segment_file,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(static_cast<std::streamoff>(victim.offset) + 5);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(static_cast<std::streamoff>(victim.offset) + 5);
    f.write(&byte, 1);
  }
  // Without the index, the recovery scan stops at the torn frame and keeps
  // everything before it.
  ASSERT_TRUE(fs::remove(fs::path(dir) / "index.ccgx"));
  auto reader = store::StoreReader::open(dir);
  ASSERT_TRUE(reader.has_value());
  EXPECT_EQ(reader->entries().size(), 6u);
  const auto loaded = scan_all(*reader);
  ASSERT_EQ(loaded.size(), 6u);
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    ASSERT_TRUE(graphs_identical(windows[i], loaded[i])) << "window " << i;
  }
}

TEST(Store, CompactRekeyframesAndAppliesRetention) {
  const auto dir = fresh_dir("compact");
  const auto windows = build_windows(simulate(120, 23));
  ASSERT_GE(windows.size(), 20u);
  {
    auto writer = store::StoreWriter::open(dir, {.keyframe_interval = 8});
    ASSERT_TRUE(writer.has_value());
    for (const auto& g : windows) ASSERT_TRUE(writer->append(g));
  }
  const std::size_t drop = 6;
  const std::int64_t horizon = windows[drop].window().begin().index();
  const auto stats =
      store::compact_store(dir, {.keyframe_interval = 2, .retain_from = horizon});
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->windows, windows.size() - drop);
  EXPECT_EQ(stats->keyframes, (stats->windows + 1) / 2);
  EXPECT_EQ(stats->first_window_begin, horizon);

  auto reader = store::StoreReader::open(dir);
  ASSERT_TRUE(reader.has_value());
  const auto loaded = scan_all(*reader);
  ASSERT_EQ(loaded.size(), windows.size() - drop);
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    ASSERT_TRUE(graphs_identical(windows[drop + i], loaded[i])) << "window " << i;
  }
}

TEST(Store, PatchStreamReconstructsEveryWindow) {
  // The incremental engine's input: fold the patch stream (reset to the
  // empty graph at keyframes, apply deltas in place otherwise) and demand
  // every folded window be byte-identical to window_at() — before and
  // after compaction moves the keyframe boundaries.
  const auto dir = fresh_dir("patches");
  const auto windows = build_windows(simulate(120, 31));
  ASSERT_GE(windows.size(), 20u);
  {
    auto writer = store::StoreWriter::open(dir, {.keyframe_interval = 4});
    ASSERT_TRUE(writer.has_value());
    for (const auto& g : windows) ASSERT_TRUE(writer->append(g));
  }

  const auto verify_stream = [&](std::size_t first_window) {
    auto reader = store::StoreReader::open(dir);
    ASSERT_TRUE(reader.has_value());
    auto patches = reader->patches();
    std::optional<CommGraph> folded;
    std::size_t i = first_window;
    std::size_t keyframes = 0;
    while (const auto entry = patches.next()) {
      ASSERT_LT(i, windows.size());
      if (entry->kind == store::FrameKind::kKeyframe) {
        ++keyframes;
        folded = apply_patch(CommGraph{}, entry->patch);
      } else {
        ASSERT_TRUE(folded.has_value()) << "delta before any keyframe";
        folded = apply_patch(*folded, entry->patch);
      }
      ASSERT_TRUE(folded.has_value()) << "window " << i;
      EXPECT_TRUE(graphs_identical(windows[i], *folded)) << "window " << i;
      EXPECT_TRUE(graphs_identical(entry->graph, *folded)) << "window " << i;
      const auto direct =
          reader->window_at(windows[i].window().begin().index());
      ASSERT_TRUE(direct.has_value()) << "window " << i;
      EXPECT_TRUE(graphs_identical(*direct, *folded)) << "window " << i;
      ++i;
    }
    EXPECT_EQ(i, windows.size());
    EXPECT_GE(keyframes, 2u) << "stream must cross keyframe boundaries";
  };

  verify_stream(0);

  // Re-keyframe on a different cadence and drop the oldest windows: the
  // stream must still fold byte-identically with the new boundaries.
  const std::size_t drop = 5;
  const auto stats = store::compact_store(
      dir, {.keyframe_interval = 3,
            .retain_from = windows[drop].window().begin().index()});
  ASSERT_TRUE(stats.has_value());
  const auto windows_after =
      std::vector<CommGraph>(windows.begin() + drop, windows.end());
  {
    auto reader = store::StoreReader::open(dir);
    ASSERT_TRUE(reader.has_value());
    auto patches = reader->patches();
    std::optional<CommGraph> folded;
    std::size_t i = 0;
    while (const auto entry = patches.next()) {
      ASSERT_LT(i, windows_after.size());
      folded = entry->kind == store::FrameKind::kKeyframe
                   ? apply_patch(CommGraph{}, entry->patch)
                   : apply_patch(*folded, entry->patch);
      ASSERT_TRUE(folded.has_value()) << "window " << i;
      EXPECT_TRUE(graphs_identical(windows_after[i], *folded))
          << "window " << i;
      ++i;
    }
    EXPECT_EQ(i, windows_after.size());
  }

  // Mid-stream ranges decode against the rolling base, so an entry's graph
  // matches the point lookup even when its patch is a delta whose base the
  // caller never saw.
  {
    auto reader = store::StoreReader::open(dir);
    ASSERT_TRUE(reader.has_value());
    const std::int64_t t0 = windows_after[3].window().begin().index();
    auto patches = reader->patches(t0);
    std::size_t i = 3;
    while (const auto entry = patches.next()) {
      ASSERT_LT(i, windows_after.size());
      EXPECT_TRUE(graphs_identical(windows_after[i], entry->graph))
          << "window " << i;
      ++i;
    }
    EXPECT_EQ(i, windows_after.size());
  }
}

TEST(Store, StoreSinkPersistsTheStream) {
  const auto dir = fresh_dir("sink");
  const Workload w = simulate(60, 29);
  const auto direct = build_windows(w);
  {
    auto writer = store::StoreWriter::open(dir);
    ASSERT_TRUE(writer.has_value());
    store::StoreSink sink(*writer, kConfig, w.monitored);
    w.stream.replay_into(sink);
    sink.flush();
    EXPECT_EQ(sink.windows_stored(), direct.size());
  }
  auto reader = store::StoreReader::open(dir);
  ASSERT_TRUE(reader.has_value());
  const auto loaded = scan_all(*reader);
  ASSERT_EQ(loaded.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    ASSERT_TRUE(graphs_identical(direct[i], loaded[i])) << "window " << i;
  }
}

TEST(Store, ReplayReproducesStreamingAnalytics) {
  const auto dir = fresh_dir("replay");
  const Workload w = simulate(120, 31);

  const AnalyticsServiceOptions options{.graph = kConfig,
                                        .training_windows = 4,
                                        .spectral = {.rank = 8}};

  // Direct path: the live streaming service, persisting as it goes.
  std::vector<std::string> direct_lines;
  {
    auto writer = store::StoreWriter::open(dir, {.keyframe_interval = 6});
    ASSERT_TRUE(writer.has_value());
    AnalyticsService service(options, w.monitored, [&](const WindowReport& r) {
      direct_lines.push_back(r.summary());
    });
    service.set_store(&*writer);
    w.stream.replay_into(service);
    service.flush();
  }
  ASSERT_GE(direct_lines.size(), 20u);

  // Replay path: a fresh service fed from the store must retrace the run.
  auto reader = store::StoreReader::open(dir);
  ASSERT_TRUE(reader.has_value());
  std::vector<std::string> replayed_lines;
  AnalyticsService replay_service(options, {}, [&](const WindowReport& r) {
    replayed_lines.push_back(r.summary());
  });
  const std::size_t replayed = replay_service.replay(*reader);
  EXPECT_EQ(replayed, direct_lines.size());
  EXPECT_EQ(replayed_lines, direct_lines);
}

}  // namespace
}  // namespace ccg

// The shared thread pool's contracts: full coverage of the index space,
// deterministic chunk geometry, bit-identical reductions at any thread
// count, nested-call safety, and exception propagation.
#include "ccg/parallel/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <vector>

#include "ccg/common/rng.hpp"

namespace ccg {
namespace {

/// Restores the configured thread count when a test exits.
struct ThreadCountGuard {
  ~ThreadCountGuard() { parallel::set_thread_count(0); }
};

TEST(ParallelPool, ThreadCountOverride) {
  ThreadCountGuard guard;
  parallel::set_thread_count(3);
  EXPECT_EQ(parallel::thread_count(), 3);
  EXPECT_EQ(parallel::max_workers(), 3u);
  parallel::set_thread_count(0);
  EXPECT_GE(parallel::thread_count(), 1);
}

TEST(ParallelPool, ChunkLayoutGeometry) {
  const auto layout = parallel::chunk_layout(100, 16);
  EXPECT_EQ(layout.count, 7u);  // ceil(100/16)
  EXPECT_EQ(layout.grain, 16u);
  EXPECT_EQ(layout.begin(0), 0u);
  EXPECT_EQ(layout.end(0, 100), 16u);
  EXPECT_EQ(layout.begin(6), 96u);
  EXPECT_EQ(layout.end(6, 100), 100u);  // short tail chunk

  EXPECT_EQ(parallel::chunk_layout(0, 8).count, 0u);
  EXPECT_EQ(parallel::chunk_layout(5, 8).count, 1u);
  EXPECT_EQ(parallel::chunk_layout(5, 0).grain, 1u);  // grain clamped to 1
}

TEST(ParallelPool, ForCoversEveryIndexExactlyOnce) {
  ThreadCountGuard guard;
  for (const int threads : {1, 2, 4}) {
    parallel::set_thread_count(threads);
    constexpr std::size_t kN = 1237;
    std::vector<std::atomic<int>> hits(kN);
    parallel::parallel_for(kN, 7, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " at " << threads
                                   << " threads";
    }
  }
}

TEST(ParallelPool, ForZeroItemsIsANoop) {
  bool called = false;
  parallel::parallel_for(0, 8, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelPool, WorkerSlotsAreDense) {
  ThreadCountGuard guard;
  parallel::set_thread_count(4);
  std::vector<std::atomic<int>> slot_hits(parallel::max_workers());
  parallel::parallel_for_worker(
      1000, 1, [&](std::size_t, std::size_t, std::size_t worker) {
        ASSERT_LT(worker, slot_hits.size());
        slot_hits[worker].fetch_add(1, std::memory_order_relaxed);
      });
  int total = 0;
  for (auto& h : slot_hits) total += h.load();
  EXPECT_EQ(total, 1000);
}

/// The headline guarantee: a floating-point reduction produces the same
/// bits at 1, 2, 3, and 8 threads, because partials are per fixed chunk and
/// merged in ascending chunk order.
TEST(ParallelPool, ReduceIsBitIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  constexpr std::size_t kN = 10007;
  std::vector<double> values(kN);
  Rng rng(99);
  for (auto& v : values) v = rng.normal() * std::exp(rng.normal());

  const auto reduce = [&] {
    return parallel::parallel_reduce(
        kN, 64, 0.0,
        [&](double& part, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) part += values[i];
        },
        [](double& acc, double part) { acc += part; });
  };

  parallel::set_thread_count(1);
  const double serial = reduce();
  for (const int threads : {2, 3, 8}) {
    parallel::set_thread_count(threads);
    for (int repeat = 0; repeat < 3; ++repeat) {
      const double parallel_sum = reduce();
      ASSERT_EQ(serial, parallel_sum)
          << "threads=" << threads << " repeat=" << repeat;
    }
  }
}

TEST(ParallelPool, ReduceHandlesIntegers) {
  ThreadCountGuard guard;
  parallel::set_thread_count(4);
  const std::uint64_t total = parallel::parallel_reduce(
      1000, 9, std::uint64_t{0},
      [](std::uint64_t& part, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) part += i;
      },
      [](std::uint64_t& acc, std::uint64_t part) { acc += part; });
  EXPECT_EQ(total, 1000u * 999u / 2);
}

TEST(ParallelPool, NestedCallsRunInlineWithoutDeadlock) {
  ThreadCountGuard guard;
  parallel::set_thread_count(4);
  std::atomic<int> inner_total{0};
  parallel::parallel_for(8, 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      parallel::parallel_for(10, 2, [&](std::size_t b, std::size_t e) {
        inner_total.fetch_add(static_cast<int>(e - b),
                              std::memory_order_relaxed);
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 80);
}

TEST(ParallelPool, BodyExceptionPropagatesToCaller) {
  ThreadCountGuard guard;
  for (const int threads : {1, 4}) {
    parallel::set_thread_count(threads);
    EXPECT_THROW(
        parallel::parallel_for(100, 4,
                               [&](std::size_t begin, std::size_t) {
                                 if (begin >= 48) {
                                   throw std::runtime_error("boom");
                                 }
                               }),
        std::runtime_error)
        << "threads=" << threads;
    // The pool must stay usable after a failed job.
    std::atomic<int> count{0};
    parallel::parallel_for(10, 1, [&](std::size_t, std::size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(count.load(), 10);
  }
}

TEST(ParallelPool, ConcurrentSubmittersSerializeSafely) {
  ThreadCountGuard guard;
  parallel::set_thread_count(3);
  // External threads submitting jobs at once must not corrupt each other:
  // each job's sum is still exact.
  std::vector<std::thread> submitters;
  std::vector<std::uint64_t> sums(4, 0);
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&, t] {
      sums[t] = parallel::parallel_reduce(
          5000, 16, std::uint64_t{0},
          [](std::uint64_t& part, std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) part += i;
          },
          [](std::uint64_t& acc, std::uint64_t part) { acc += part; });
    });
  }
  for (auto& s : submitters) s.join();
  for (const std::uint64_t sum : sums) EXPECT_EQ(sum, 5000ull * 4999ull / 2);
}

}  // namespace
}  // namespace ccg

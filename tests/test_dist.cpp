// End-to-end tests of the distributed collector's determinism contract
// (docs/DISTRIBUTED.md): a sharded multi-connection run must be
// byte-identical to a single-process build, and every failure mode must be
// an explicit fail-fast, never a silent drop.
#include "ccg/dist/aggregator.hpp"
#include "ccg/dist/shard_worker.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <thread>
#include <vector>

#include "ccg/analytics/service.hpp"
#include "ccg/common/rng.hpp"
#include "ccg/dist/wire.hpp"
#include "ccg/net/frame.hpp"
#include "ccg/obs/trace.hpp"
#include "ccg/store/format.hpp"

namespace ccg::dist {
namespace {

std::vector<ConnectionSummary> random_minute(std::int64_t minute, std::size_t n,
                                             Rng& rng) {
  std::vector<ConnectionSummary> batch;
  for (std::size_t i = 0; i < n; ++i) {
    const IpAddr local(0x0A000001 + static_cast<std::uint32_t>(rng.uniform(32)));
    IpAddr remote(0x0A000001 + static_cast<std::uint32_t>(rng.uniform(32)));
    if (remote == local) remote = IpAddr(remote.bits() + 1);
    batch.push_back(ConnectionSummary{
        .time = MinuteBucket(minute),
        .flow = FlowKey{.local_ip = local,
                        .local_port =
                            static_cast<std::uint16_t>(33000 + rng.uniform(1000)),
                        .remote_ip = remote,
                        .remote_port = 443,
                        .protocol = Protocol::kTcp},
        .counters = TrafficCounters{.packets_sent = 1 + rng.uniform(10),
                                    .packets_rcvd = 1,
                                    .bytes_sent = 100 + rng.uniform(10000),
                                    .bytes_rcvd = 50}});
  }
  return batch;
}

std::unordered_set<IpAddr> all_monitored() {
  std::unordered_set<IpAddr> monitored;
  for (std::uint32_t i = 0; i < 64; ++i) monitored.insert(IpAddr(0x0A000001 + i));
  return monitored;
}

std::vector<std::uint8_t> frame_bytes(const CommGraph& graph) {
  return store::encode_frame(store::FrameKind::kKeyframe, CommGraph(), graph);
}

/// Runs `shards` ShardWorkers (worker threads over socketpairs) and one
/// Aggregator (this thread) over the given minutes; returns the merged
/// window graphs.
std::optional<std::vector<CommGraph>> run_distributed(
    const std::vector<std::vector<ConnectionSummary>>& minutes,
    const GraphBuildConfig& config, std::size_t shards) {
  std::vector<net::FrameConn> agg_side;
  std::vector<std::thread> workers;
  std::vector<int> worker_rc(shards, -1);
  for (std::size_t s = 0; s < shards; ++s) {
    auto pair = net::socket_pair();
    if (!pair.has_value()) return std::nullopt;
    agg_side.push_back(std::move(pair->first));
    workers.emplace_back([&, s, conn = std::move(pair->second)]() mutable {
      ShardWorker worker({.shard_id = static_cast<std::uint32_t>(s),
                          .shard_count = static_cast<std::uint32_t>(shards),
                          .graph = config},
                         all_monitored(), std::move(conn));
      if (!worker.handshake()) {
        worker_rc[s] = 1;
        return;
      }
      for (std::size_t m = 0; m < minutes.size(); ++m) {
        worker.on_batch(MinuteBucket(static_cast<std::int64_t>(m)), minutes[m]);
      }
      worker_rc[s] = worker.finish() ? 0 : 1;
    });
  }

  std::vector<CommGraph> merged;
  Aggregator aggregator({.graph = config, .recv_timeout_ms = 10000},
                        std::move(agg_side));
  const bool shook = aggregator.handshake();
  std::optional<Aggregator::Result> result;
  if (shook) {
    result = aggregator.run(
        [&](const CommGraph& graph) { merged.push_back(graph); });
  }
  for (auto& t : workers) t.join();
  if (!shook || !result) return std::nullopt;
  for (std::size_t s = 0; s < shards; ++s) {
    if (worker_rc[s] != 0) return std::nullopt;
  }
  return merged;
}

TEST(ShardHash, GoldenAssignmentsArePinned) {
  // shard_of_record is part of the wire contract: in-process pipeline,
  // shard workers and any future external partitioner must agree. These
  // values pin the hash — if this test breaks, the shard key changed and
  // kWireVersion must be bumped.
  Rng rng(7);
  const auto batch = random_minute(0, 8, rng);
  const std::vector<std::size_t> golden_4 = {1, 1, 2, 0, 3, 3, 3, 0};
  ASSERT_EQ(batch.size(), golden_4.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(shard_of_record(batch[i], GraphFacet::kIp, 4), golden_4[i])
        << "record " << i;
  }
}

TEST(ShardHash, BothFlowOrientationsLandInOneShard) {
  // An edge's two endpoints may each report the same conversation; the
  // merge is a disjoint union only if both records hash to the same shard.
  Rng rng(21);
  for (const auto& record : random_minute(0, 200, rng)) {
    ConnectionSummary flipped = record;
    std::swap(flipped.flow.local_ip, flipped.flow.remote_ip);
    std::swap(flipped.flow.local_port, flipped.flow.remote_port);
    for (const std::size_t shards : {2u, 4u, 7u}) {
      for (const GraphFacet facet : {GraphFacet::kIp, GraphFacet::kIpPort}) {
        EXPECT_EQ(shard_of_record(record, facet, shards),
                  shard_of_record(flipped, facet, shards));
      }
    }
  }
}

TEST(ShardHash, EveryShardGetsWork) {
  Rng rng(5);
  const auto batch = random_minute(0, 2000, rng);
  std::vector<std::size_t> counts(4, 0);
  for (const auto& r : batch) {
    ++counts[shard_of_record(r, GraphFacet::kIp, 4)];
  }
  for (std::size_t s = 0; s < counts.size(); ++s) {
    EXPECT_GT(counts[s], 100u) << "shard " << s << " starved";
  }
}

TEST(DistributedCollector, ByteIdenticalAtOneTwoAndFourShards) {
  Rng rng(99);
  std::vector<std::vector<ConnectionSummary>> minutes;
  for (std::int64_t m = 0; m < 120; ++m) {
    minutes.push_back(random_minute(m, 200, rng));
  }
  const GraphBuildConfig config{.facet = GraphFacet::kIp,
                                .window_minutes = 60,
                                .collapse_threshold = 0.01};

  GraphBuilder reference(config, all_monitored());
  for (std::size_t m = 0; m < minutes.size(); ++m) {
    reference.on_batch(MinuteBucket(static_cast<std::int64_t>(m)), minutes[m]);
  }
  reference.flush();
  const auto expected = reference.take_graphs();
  ASSERT_EQ(expected.size(), 2u);

  for (const std::size_t shards : {1u, 2u, 4u}) {
    const auto merged = run_distributed(minutes, config, shards);
    ASSERT_TRUE(merged.has_value()) << shards << " shards";
    ASSERT_EQ(merged->size(), expected.size()) << shards << " shards";
    for (std::size_t w = 0; w < expected.size(); ++w) {
      EXPECT_EQ((*merged)[w].window(), expected[w].window());
      EXPECT_EQ(frame_bytes((*merged)[w]), frame_bytes(expected[w]))
          << "window " << w << " differs at " << shards << " shards";
    }
  }
}

TEST(DistributedCollector, AnalyticsSummariesMatchSingleProcess) {
  Rng rng(31);
  std::vector<std::vector<ConnectionSummary>> minutes;
  for (std::int64_t m = 0; m < 300; ++m) {
    minutes.push_back(random_minute(m, 120, rng));
  }
  const GraphBuildConfig config{.facet = GraphFacet::kIp, .window_minutes = 60};

  // Single process: the normal streaming path.
  std::vector<std::string> single;
  AnalyticsService single_service(
      {.graph = config, .training_windows = 2},
      all_monitored(),
      [&](const WindowReport& r) { single.push_back(r.summary()); });
  for (std::size_t m = 0; m < minutes.size(); ++m) {
    single_service.on_batch(MinuteBucket(static_cast<std::int64_t>(m)),
                            minutes[m]);
  }
  single_service.flush();
  ASSERT_EQ(single.size(), 5u);

  // Distributed: merged windows enter through ingest_window.
  const auto merged = run_distributed(minutes, config, 4);
  ASSERT_TRUE(merged.has_value());
  std::vector<std::string> distributed;
  AnalyticsService dist_service(
      {.graph = config, .training_windows = 2}, {},
      [&](const WindowReport& r) { distributed.push_back(r.summary()); });
  for (const CommGraph& graph : *merged) dist_service.ingest_window(graph);

  EXPECT_EQ(distributed, single);
}

TEST(DistributedCollector, WindowTraceIdsSurviveTheWire) {
  Rng rng(13);
  std::vector<std::vector<ConnectionSummary>> minutes;
  for (std::int64_t m = 0; m < 120; ++m) {
    minutes.push_back(random_minute(m, 50, rng));
  }
  const GraphBuildConfig config{.facet = GraphFacet::kIp, .window_minutes = 60};
  const auto merged = run_distributed(minutes, config, 2);
  ASSERT_TRUE(merged.has_value());
  for (const CommGraph& graph : *merged) {
    // The aggregator refuses frames whose shipped trace id disagrees with
    // the deterministic one, so surviving windows must satisfy this.
    EXPECT_NE(obs::window_trace_id(graph.window().begin().index()), 0u);
  }
}

// --- failure semantics -------------------------------------------------------

TEST(DistributedCollector, AggregatorRefusesVersionMismatch) {
  auto pair = net::socket_pair();
  ASSERT_TRUE(pair.has_value());
  const GraphBuildConfig config{.facet = GraphFacet::kIp, .window_minutes = 60};

  Hello hello;
  hello.version = kWireVersion + 1;
  hello.shard_id = 0;
  hello.shard_count = 1;
  hello.config = wire_config(config);
  ASSERT_TRUE(pair->second.send(encode_hello(hello)));

  std::vector<net::FrameConn> conns;
  conns.push_back(std::move(pair->first));
  Aggregator aggregator({.graph = config,
                         .recv_timeout_ms = 2000,
                         .flight_dir = ::testing::TempDir()},
                        std::move(conns));
  EXPECT_FALSE(aggregator.handshake());
  // The refused shard sees a closed connection, not an ack.
  std::vector<std::uint8_t> payload;
  EXPECT_EQ(pair->second.recv(payload, 2000), net::RecvStatus::kEof);
}

TEST(DistributedCollector, AggregatorRefusesConfigMismatch) {
  auto pair = net::socket_pair();
  ASSERT_TRUE(pair.has_value());
  const GraphBuildConfig agg_config{.facet = GraphFacet::kIp,
                                    .window_minutes = 60};
  GraphBuildConfig shard_config = agg_config;
  shard_config.window_minutes = 30;  // disagreement → refusal

  std::vector<net::FrameConn> conns;
  conns.push_back(std::move(pair->first));
  Aggregator aggregator({.graph = agg_config,
                         .recv_timeout_ms = 2000,
                         .flight_dir = ::testing::TempDir()},
                        std::move(conns));

  std::thread worker([&, conn = std::move(pair->second)]() mutable {
    ShardWorker shard({.shard_id = 0, .shard_count = 1, .graph = shard_config},
                      all_monitored(), std::move(conn));
    // The worker must read the missing ack as a refusal.
    EXPECT_FALSE(shard.handshake());
  });
  EXPECT_FALSE(aggregator.handshake());
  worker.join();
}

TEST(DistributedCollector, DuplicateShardIdRefused) {
  auto a = net::socket_pair();
  auto b = net::socket_pair();
  ASSERT_TRUE(a.has_value() && b.has_value());
  const GraphBuildConfig config{.facet = GraphFacet::kIp, .window_minutes = 60};

  Hello hello;
  hello.shard_id = 1;
  hello.shard_count = 2;
  hello.config = wire_config(config);
  ASSERT_TRUE(a->second.send(encode_hello(hello)));
  ASSERT_TRUE(b->second.send(encode_hello(hello)));  // same shard id twice

  std::vector<net::FrameConn> conns;
  conns.push_back(std::move(a->first));
  conns.push_back(std::move(b->first));
  Aggregator aggregator({.graph = config,
                         .recv_timeout_ms = 2000,
                         .flight_dir = ::testing::TempDir()},
                        std::move(conns));
  EXPECT_FALSE(aggregator.handshake());
}

TEST(DistributedCollector, ShardDyingMidStreamFailsTheRun) {
  const GraphBuildConfig config{.facet = GraphFacet::kIp, .window_minutes = 60};
  auto pair = net::socket_pair();
  ASSERT_TRUE(pair.has_value());

  std::vector<net::FrameConn> conns;
  conns.push_back(std::move(pair->first));
  Aggregator aggregator({.graph = config,
                         .recv_timeout_ms = 2000,
                         .flight_dir = ::testing::TempDir()},
                        std::move(conns));

  std::thread worker([&, conn = std::move(pair->second)]() mutable {
    ShardWorker shard({.shard_id = 0, .shard_count = 1, .graph = config},
                      all_monitored(), std::move(conn));
    ASSERT_TRUE(shard.handshake());
    Rng rng(3);
    // Two windows' worth of records, then vanish without end-of-stream:
    // the aggregator must treat the EOF as a crash, not completion.
    for (std::int64_t m = 0; m < 90; ++m) {
      shard.on_batch(MinuteBucket(m), random_minute(m, 20, rng));
    }
  });
  ASSERT_TRUE(aggregator.handshake());
  std::vector<CommGraph> merged;
  EXPECT_FALSE(
      aggregator.run([&](const CommGraph& g) { merged.push_back(g); })
          .has_value());
  worker.join();
}

TEST(DistributedCollector, SilentShardTimesOutAndFailsTheRun) {
  const GraphBuildConfig config{.facet = GraphFacet::kIp, .window_minutes = 60};
  auto pair = net::socket_pair();
  ASSERT_TRUE(pair.has_value());

  Hello hello;
  hello.shard_id = 0;
  hello.shard_count = 1;
  hello.config = wire_config(config);
  ASSERT_TRUE(pair->second.send(encode_hello(hello)));

  std::vector<net::FrameConn> conns;
  conns.push_back(std::move(pair->first));
  Aggregator aggregator({.graph = config,
                         .recv_timeout_ms = 100,
                         .flight_dir = ::testing::TempDir()},
                        std::move(conns));
  ASSERT_TRUE(aggregator.handshake());
  // The shard never ships anything: the run must fail fast (timeout), not
  // hang or report success.
  EXPECT_FALSE(aggregator.run([](const CommGraph&) {}).has_value());
}

TEST(DistributedCollector, ForgedTraceIdFailsTheRun) {
  const GraphBuildConfig config{.facet = GraphFacet::kIp, .window_minutes = 60};
  auto pair = net::socket_pair();
  ASSERT_TRUE(pair.has_value());

  Hello hello;
  hello.shard_id = 0;
  hello.shard_count = 1;
  hello.config = wire_config(config);
  ASSERT_TRUE(pair->second.send(encode_hello(hello)));

  std::vector<net::FrameConn> conns;
  conns.push_back(std::move(pair->first));
  Aggregator aggregator({.graph = config,
                         .recv_timeout_ms = 2000,
                         .flight_dir = ::testing::TempDir()},
                        std::move(conns));
  ASSERT_TRUE(aggregator.handshake());
  std::vector<std::uint8_t> ack;
  ASSERT_EQ(pair->second.recv(ack, 2000), net::RecvStatus::kOk);

  // A syntactically valid window frame whose trace id is not the
  // deterministic one for its window: the processes disagree about window
  // identity, which poisons cross-process trace correlation.
  GraphBuilder builder(config, all_monitored());
  Rng rng(4);
  for (std::int64_t m = 0; m < 61; ++m) {
    builder.on_batch(MinuteBucket(m), random_minute(m, 10, rng));
  }
  auto graphs = builder.take_graphs();
  ASSERT_FALSE(graphs.empty());
  WindowFrame frame;
  frame.shard_id = 0;
  frame.window_begin = graphs[0].window().begin().index();
  frame.trace_id = obs::window_trace_id(frame.window_begin) ^ 1;
  frame.keyframe = frame_bytes(graphs[0]);
  ASSERT_TRUE(pair->second.send(encode_window(frame)));

  EXPECT_FALSE(aggregator.run([](const CommGraph&) {}).has_value());
}

TEST(DistributedCollector, InconsistentEndOfStreamFailsTheRun) {
  const GraphBuildConfig config{.facet = GraphFacet::kIp, .window_minutes = 60};
  auto pair = net::socket_pair();
  ASSERT_TRUE(pair.has_value());

  Hello hello;
  hello.shard_id = 0;
  hello.shard_count = 1;
  hello.config = wire_config(config);
  ASSERT_TRUE(pair->second.send(encode_hello(hello)));
  // Claims one shipped window, shipped none: the aggregator must notice
  // the hole instead of reporting a clean (but incomplete) run.
  ASSERT_TRUE(pair->second.send(encode_end_of_stream({0, 100, 1})));

  std::vector<net::FrameConn> conns;
  conns.push_back(std::move(pair->first));
  Aggregator aggregator({.graph = config,
                         .recv_timeout_ms = 2000,
                         .flight_dir = ::testing::TempDir()},
                        std::move(conns));
  ASSERT_TRUE(aggregator.handshake());
  EXPECT_FALSE(aggregator.run([](const CommGraph&) {}).has_value());
}

TEST(DistributedCollector, ArrivalOrderDoesNotMatter) {
  // Workers race to connect in `serve`; the hello's shard id, not arrival
  // order, decides the slot. Swap the connection order and the result must
  // still be byte-identical.
  Rng rng(55);
  std::vector<std::vector<ConnectionSummary>> minutes;
  for (std::int64_t m = 0; m < 60; ++m) {
    minutes.push_back(random_minute(m, 100, rng));
  }
  const GraphBuildConfig config{.facet = GraphFacet::kIp, .window_minutes = 60};

  GraphBuilder reference(config, all_monitored());
  for (std::size_t m = 0; m < minutes.size(); ++m) {
    reference.on_batch(MinuteBucket(static_cast<std::int64_t>(m)), minutes[m]);
  }
  reference.flush();
  const auto expected = reference.take_graphs();
  ASSERT_EQ(expected.size(), 1u);

  auto a = net::socket_pair();
  auto b = net::socket_pair();
  ASSERT_TRUE(a.has_value() && b.has_value());
  std::vector<std::thread> workers;
  std::array<net::FrameConn, 2> worker_conns = {std::move(a->second),
                                                std::move(b->second)};
  for (std::size_t s = 0; s < 2; ++s) {
    workers.emplace_back([&, s, conn = std::move(worker_conns[s])]() mutable {
      ShardWorker worker({.shard_id = static_cast<std::uint32_t>(s),
                          .shard_count = 2,
                          .graph = config},
                         all_monitored(), std::move(conn));
      ASSERT_TRUE(worker.handshake());
      for (std::size_t m = 0; m < minutes.size(); ++m) {
        worker.on_batch(MinuteBucket(static_cast<std::int64_t>(m)), minutes[m]);
      }
      EXPECT_TRUE(worker.finish());
    });
  }
  // Deliberately reversed: shard 1's connection first.
  std::vector<net::FrameConn> conns;
  conns.push_back(std::move(b->first));
  conns.push_back(std::move(a->first));
  Aggregator aggregator({.graph = config, .recv_timeout_ms = 10000},
                        std::move(conns));
  ASSERT_TRUE(aggregator.handshake());
  std::vector<CommGraph> merged;
  const auto result =
      aggregator.run([&](const CommGraph& g) { merged.push_back(g); });
  for (auto& t : workers) t.join();
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(frame_bytes(merged[0]), frame_bytes(expected[0]));
}

}  // namespace
}  // namespace ccg::dist

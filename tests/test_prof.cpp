// Continuous profiler: frame-stack attribution, CPU/wall sampling, folded
// and JSON export, hardware-counter tiers, and per-stage heap accounting.
//
// Suites are intentionally NOT named Obs*: the sampler installs signal
// handlers and timers that do not belong in the TSan run (each suite here
// is its own ctest process, so process-global profiler state is safe).
#include "ccg/obs/prof.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <initializer_list>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "ccg/analytics/service.hpp"
#include "ccg/obs/heap.hpp"
#include "ccg/obs/metrics.hpp"
#include "ccg/obs/prof_counters.hpp"
#include "ccg/obs/span.hpp"
#include "ccg/obs/trace.hpp"
#include "ccg/parallel/parallel.hpp"
#include "ccg/workload/driver.hpp"
#include "ccg/workload/presets.hpp"

namespace ccg {
namespace {

namespace prof = obs::prof;

/// Burns CPU until `seconds` of wall time pass (the work is real, so CPU
/// time advances roughly in step while spinning).
/// Publishes a pointer through a volatile global so the optimizer cannot
/// elide the new/delete pair that produced it (C++14 allocation elision
/// would otherwise skip the heap hooks entirely).
void escape_pointer(const void* p) {
  static const void* volatile sink;
  sink = p;
}

void busy_loop(double seconds) {
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::duration<double>(seconds);
  volatile double sink = 0.0;
  while (std::chrono::steady_clock::now() < until) {
    for (int i = 0; i < 1000; ++i) sink = sink + static_cast<double>(i) * 1e-9;
  }
}

TEST(ProfFrames, FrameScopeIsInertWhileProfilerIsOff) {
  ASSERT_FALSE(prof::frames_enabled());
  prof::FrameScope null_frame(nullptr);
  prof::FrameScope named_frame("ccg.test.frame");
  // Nothing observable to assert beyond "does not crash / does not leak a
  // frame": start a profiler afterwards and confirm the stack is empty.
  ASSERT_TRUE(prof::start({.hz = 101}));
  busy_loop(0.05);
  const prof::Profile profile = prof::stop();
  for (const auto& [stack, count] : profile.folded()) {
    EXPECT_EQ(stack, "(untracked)") << "frame leaked from disabled scope";
  }
}

TEST(ProfSampling, StartIsExclusiveAndStopIsIdempotent) {
  EXPECT_FALSE(prof::running());
  EXPECT_EQ(prof::stop().samples.size(), 0u);  // stop without start: empty
  ASSERT_TRUE(prof::start({.hz = 101}));
  EXPECT_TRUE(prof::running());
  EXPECT_FALSE(prof::start({.hz = 101})) << "second profiler must be refused";
  const prof::Profile profile = prof::stop();
  EXPECT_FALSE(prof::running());
  EXPECT_GT(profile.duration_seconds, 0.0);
  EXPECT_EQ(profile.options.hz, 101);
}

TEST(ProfSampling, CpuSamplesAttributeNestedSpans) {
  ASSERT_TRUE(prof::start({.hz = 757}));
  {
    obs::TraceScope trace({obs::window_trace_id(7), 0});
    obs::ScopedSpan outer(obs::span_histogram("ccg.test.prof.outer"),
                          "ccg.test.prof.outer");
    busy_loop(0.15);
    {
      obs::ScopedSpan inner(obs::span_histogram("ccg.test.prof.inner"),
                            "ccg.test.prof.inner");
      busy_loop(0.15);
    }
  }
  const prof::Profile profile = prof::stop();
  ASSERT_GT(profile.samples.size(), 0u) << "no CPU samples in 300 ms of spin";

  // Folded stacks mirror span nesting: inner only ever appears under outer.
  bool saw_nested = false;
  for (const auto& [stack, count] : profile.folded()) {
    if (stack.find("ccg.test.prof.inner") != std::string::npos) {
      EXPECT_EQ(stack, "ccg.test.prof.outer;ccg.test.prof.inner");
      saw_nested = true;
    }
  }

  std::uint64_t outer_total = 0, inner_total = 0, outer_self = 0;
  for (const prof::FrameCost& cost : profile.frame_costs()) {
    if (cost.name == "ccg.test.prof.outer") {
      outer_total = cost.total;
      outer_self = cost.self;
    }
    if (cost.name == "ccg.test.prof.inner") inner_total = cost.total;
  }
  EXPECT_GT(outer_total, 0u);
  EXPECT_GE(outer_total, inner_total) << "parent total covers child samples";
  if (saw_nested) {
    EXPECT_GT(inner_total, 0u);
  }
  EXPECT_EQ(outer_self + inner_total, outer_total)
      << "self + nested child = total for a two-frame tree";

  // Every in-span sample carries the window's trace id.
  bool saw_window = false;
  for (const auto& [trace_id, count] : profile.samples_by_window()) {
    EXPECT_TRUE(trace_id == 0 || trace_id == obs::window_trace_id(7));
    if (trace_id == obs::window_trace_id(7)) saw_window = true;
  }
  EXPECT_TRUE(saw_window);

  // Exports agree with the aggregates.
  const std::string folded = profile.folded_text();
  EXPECT_NE(folded.find("ccg.test.prof.outer"), std::string::npos);
  const std::string table = profile.table_text();
  EXPECT_NE(table.find("ccg.test.prof.outer"), std::string::npos);
  EXPECT_NE(table.find("self(s)"), std::string::npos);
  const std::string json = profile.to_json();
  EXPECT_NE(json.find("\"mode\": \"cpu\""), std::string::npos);
  EXPECT_NE(json.find("\"folded\": ["), std::string::npos);
}

TEST(ProfSampling, WallModeSamplesThroughSleep) {
  ASSERT_TRUE(prof::start({.hz = 197, .wall = true}));
  {
    obs::ScopedSpan span(obs::span_histogram("ccg.test.prof.sleepy"),
                         "ccg.test.prof.sleepy");
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
  }
  const prof::Profile profile = prof::stop();
  ASSERT_GT(profile.samples.size(), 0u)
      << "wall sampling must fire while the process sleeps";
  bool saw_sleepy = false;
  for (const auto& [stack, count] : profile.folded()) {
    if (stack.find("ccg.test.prof.sleepy") != std::string::npos) {
      saw_sleepy = true;
    }
  }
  EXPECT_TRUE(saw_sleepy);
  EXPECT_NE(profile.to_json().find("\"mode\": \"wall\""), std::string::npos);
}

TEST(ProfAggregation, FoldedAndCostsFromSyntheticSamples) {
  prof::Profile profile;
  profile.options.hz = 100;
  const auto sample = [](std::initializer_list<const char*> frames,
                         std::uint64_t trace) {
    prof::Sample s;
    s.trace_id = trace;
    for (const char* f : frames) s.frames[s.depth++] = f;
    return s;
  };
  profile.samples = {
      sample({"a", "b"}, 1), sample({"a", "b"}, 1), sample({"a"}, 1),
      sample({}, 0),
  };

  const auto folded = profile.folded();
  ASSERT_EQ(folded.size(), 3u);  // "(untracked)", "a", "a;b" (sorted)
  EXPECT_EQ(folded[0].first, "(untracked)");
  EXPECT_EQ(folded[0].second, 1u);
  EXPECT_EQ(folded[1].first, "a");
  EXPECT_EQ(folded[1].second, 1u);
  EXPECT_EQ(folded[2].first, "a;b");
  EXPECT_EQ(folded[2].second, 2u);

  const auto costs = profile.frame_costs();
  ASSERT_EQ(costs.size(), 2u);
  EXPECT_EQ(costs[0].name, "b");  // self 2 sorts first
  EXPECT_EQ(costs[0].self, 2u);
  EXPECT_EQ(costs[0].total, 2u);
  EXPECT_EQ(costs[1].name, "a");
  EXPECT_EQ(costs[1].self, 1u);
  EXPECT_EQ(costs[1].total, 3u);

  EXPECT_EQ(profile.folded_text(), "(untracked) 1\na 1\na;b 2\n");

  const auto by_window = profile.samples_by_window();
  ASSERT_EQ(by_window.size(), 2u);
  EXPECT_EQ(by_window[0], (std::pair<std::uint64_t, std::uint64_t>{0, 1}));
  EXPECT_EQ(by_window[1], (std::pair<std::uint64_t, std::uint64_t>{1, 3}));
}

/// The acceptance criterion: folded-stack attribution from a profiled
/// pipeline run matches the span tree `ccgraph trace` prints — stage
/// frames appear under the window root, never orphaned, and every sampled
/// trace id is a real window id from the run.
TEST(ProfIntegration, PipelineFoldedStacksMatchSpanTree) {
  obs::TraceRing::global().enable(1 << 12);

  Cluster cluster(presets::tiny(), 31);
  TelemetryHub hub(ProviderProfile::azure(), 31);
  SimulationDriver driver(cluster, hub);
  const auto ips = cluster.monitored_ips();
  AnalyticsService service(
      {.graph = {.facet = GraphFacet::kIp, .window_minutes = 5},
       .training_windows = 1,
       .stall_injection_ms = 30},  // guarantees wall samples inside windows
      {ips.begin(), ips.end()}, [](const WindowReport&) {});
  hub.set_sink(&service);

  ASSERT_TRUE(prof::start({.hz = 397, .wall = true}));
  driver.run(TimeWindow::minutes(0, 15));
  service.flush();
  const prof::Profile profile = prof::stop();
  const auto events = obs::TraceRing::global().events();
  obs::TraceRing::global().disable();

  ASSERT_GT(profile.samples.size(), 0u);

  // Valid window ids for this run: windows begin at minutes 0, 5, 10.
  for (const auto& [trace_id, count] : profile.samples_by_window()) {
    EXPECT_TRUE(trace_id == 0 || trace_id == obs::window_trace_id(0) ||
                trace_id == obs::window_trace_id(5) ||
                trace_id == obs::window_trace_id(10))
        << "sample attributed to nonexistent window 0x" << std::hex << trace_id;
  }

  // Folded stacks: an analysis-stage frame is always preceded by the
  // window root, exactly as the span tree nests stages under
  // ccg.analytics.window. stage.build is the exception by design — graph
  // building runs during per-minute ingestion, before the window closes,
  // so it is a root span in the trace and a root frame here.
  bool saw_window_stack = false;
  for (const auto& [stack, count] : profile.folded()) {
    const auto stage_at = stack.find("ccg.analytics.stage.");
    const auto window_at = stack.find("ccg.analytics.window");
    if (window_at != std::string::npos) saw_window_stack = true;
    if (stage_at == std::string::npos) continue;
    if (stack.compare(stage_at, 25, "ccg.analytics.stage.build") == 0) {
      continue;
    }
    ASSERT_NE(window_at, std::string::npos)
        << "orphaned stage frame in: " << stack;
    EXPECT_LT(window_at, stage_at) << "window must be outer in: " << stack;
  }
  EXPECT_TRUE(saw_window_stack)
      << "30 ms stalls at 397 Hz must land samples inside windows";

  // And the span tree agrees: every recorded stage span's parent chain
  // reaches the window root span of its trace.
  std::map<std::uint64_t, const obs::TraceEvent*> by_id;
  for (const auto& e : events) by_id[e.span_id] = &e;
  std::size_t stage_spans = 0;
  for (const auto& e : events) {
    if (e.name.rfind("ccg.analytics.stage.", 0) != 0) continue;
    if (e.name == "ccg.analytics.stage.build") continue;  // ingestion-side
    ++stage_spans;
    const obs::TraceEvent* cursor = &e;
    bool reached_window = false;
    while (cursor->parent_id != 0 && by_id.count(cursor->parent_id) != 0) {
      cursor = by_id[cursor->parent_id];
      if (cursor->name == "ccg.analytics.window") {
        reached_window = true;
        break;
      }
    }
    EXPECT_TRUE(reached_window) << e.name << " span not under window root";
  }
  EXPECT_GT(stage_spans, 0u);
}

TEST(ProfCounters, TierDegradesGracefullyAndScopesMeasureCpu) {
  const prof::CounterTier tier = prof::enable_counters();
  EXPECT_TRUE(prof::counters_enabled());
  EXPECT_EQ(tier, prof::counter_tier());
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_NE(tier, prof::CounterTier::kNone) << "rusage tier always exists";
#endif
  EXPECT_STRNE(prof::tier_name(tier), "");

  prof::CounterValues delta;
  {
    prof::CounterScope scope(delta);
    busy_loop(0.05);
  }
  EXPECT_EQ(delta.tier, tier);
  if (tier != prof::CounterTier::kNone) {
    EXPECT_GT(delta.cpu_seconds, 0.0) << "50 ms spin must show CPU time";
    EXPECT_GT(delta.max_rss_bytes, 0u);
  }
  if (tier == prof::CounterTier::kPerfEvent) {
    EXPECT_GT(delta.cycles, 0u);
    EXPECT_GT(delta.instructions, 0u);
  }

  // Absolute readings are monotone in CPU.
  const prof::CounterValues a = prof::read_counters();
  busy_loop(0.02);
  const prof::CounterValues b = prof::read_counters();
  EXPECT_GE(b.cpu_seconds, a.cpu_seconds);
}

TEST(ProfCounters, KernelScopeAccumulatesIntoRegistry) {
  prof::enable_counters();
  obs::Registry& registry = obs::Registry::global();
  obs::Counter& calls = registry.counter("ccg.prof.kernel.test_kernel.calls");
  obs::Counter& cpu_ns = registry.counter("ccg.prof.kernel.test_kernel.cpu_ns");
  const std::uint64_t calls_before = calls.value();
  const std::uint64_t cpu_before = cpu_ns.value();
  for (int i = 0; i < 2; ++i) {
    prof::KernelCounterScope scope("test_kernel");
    busy_loop(0.02);
  }
  EXPECT_EQ(calls.value(), calls_before + 2);
  if (prof::counter_tier() != prof::CounterTier::kNone) {
    EXPECT_GT(cpu_ns.value(), cpu_before);
  }
}

TEST(ProfHeap, SinksAttributeAllocationsAndChainToParents) {
  if (!prof::heap_tracking_available()) {
    GTEST_SKIP() << "heap hooks compiled out (sanitizer build)";
  }
  const prof::HeapUsage before = prof::process_heap_totals();

  prof::HeapSink window_sink;
  prof::HeapSinkScope window_scope(&window_sink);
  {
    prof::HeapSink stage_sink;  // chains to window_sink automatically
    EXPECT_EQ(stage_sink.parent(), &window_sink);
    prof::HeapSinkScope stage_scope(&stage_sink);
    auto* block = new char[32 * 1024];
    escape_pointer(block);  // defeat allocation elision
    delete[] block;
    const prof::HeapUsage stage = stage_sink.usage();
    EXPECT_GE(stage.bytes, 32u * 1024u);
    EXPECT_GE(stage.allocs, 1u);
  }
  const prof::HeapUsage window = window_sink.usage();
  EXPECT_GE(window.bytes, 32u * 1024u) << "stage allocations bill the window";

  const std::uint64_t window_bytes_after_stage = window.bytes;
  {
    std::vector<char> v(8 * 1024);
    escape_pointer(v.data());
  }
  EXPECT_GE(window_sink.usage().bytes, window_bytes_after_stage + 8 * 1024)
      << "window sink keeps billing after the stage closed";

  const prof::HeapUsage after = prof::process_heap_totals();
  EXPECT_GT(after.bytes, before.bytes);
  EXPECT_GT(after.allocs, before.allocs);
  EXPECT_GE(prof::process_heap_freed().allocs, 1u);
}

TEST(ProfHeap, PoolWorkersBillTheSubmittersSink) {
  if (!prof::heap_tracking_available()) {
    GTEST_SKIP() << "heap hooks compiled out (sanitizer build)";
  }
  parallel::set_thread_count(4);
  prof::HeapSink sink;
  std::atomic<std::uint64_t> expected{0};
  {
    prof::HeapSinkScope scope(&sink);
    parallel::parallel_for(64, 1, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        std::vector<char> block(4096);
        escape_pointer(block.data());
        expected.fetch_add(block.size(), std::memory_order_relaxed);
      }
    });
  }
  parallel::set_thread_count(0);
  EXPECT_GE(sink.usage().bytes, expected.load())
      << "chunk allocations on worker threads must bill the submitter";
  EXPECT_GE(sink.usage().allocs, 64u);
}

TEST(ProfRings, DefaultTraceRingCapacityIsPositive) {
  const std::size_t capacity = obs::default_trace_ring_capacity();
  EXPECT_GT(capacity, 0u);
  if (std::getenv("CCG_TRACE_RING") == nullptr) {
    EXPECT_EQ(capacity, std::size_t{1} << 16);
  }
}

}  // namespace
}  // namespace ccg

#include <gtest/gtest.h>

#include <cmath>

#include "ccg/common/expect.hpp"
#include "ccg/common/rng.hpp"
#include "ccg/linalg/eigen.hpp"
#include "ccg/linalg/ica.hpp"
#include "ccg/linalg/matrix.hpp"
#include "ccg/linalg/pca.hpp"

namespace ccg {
namespace {

Matrix random_symmetric(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = rng.normal();
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  return m;
}

TEST(Matrix, BasicOps) {
  Matrix m(2, 3);
  m(0, 0) = 1;
  m(1, 2) = 5;
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_FALSE(m.square());
  const Matrix t = m.transpose();
  EXPECT_EQ(t(2, 1), 5.0);
  EXPECT_EQ(t(0, 0), 1.0);
}

TEST(Matrix, MultiplyKnownValues) {
  Matrix a(2, 2, {1, 2, 3, 4});
  Matrix b(2, 2, {5, 6, 7, 8});
  const Matrix c = a.multiply(b);
  EXPECT_EQ(c(0, 0), 19.0);
  EXPECT_EQ(c(0, 1), 22.0);
  EXPECT_EQ(c(1, 0), 43.0);
  EXPECT_EQ(c(1, 1), 50.0);
  EXPECT_THROW(a.multiply(Matrix(3, 2)), ContractViolation);
}

TEST(Matrix, IdentityMultiplyIsNoop) {
  const Matrix m = random_symmetric(5, 1);
  const Matrix i = Matrix::identity(5);
  const Matrix mi = m.multiply(i);
  EXPECT_NEAR((m - mi).abs_sum(), 0.0, 1e-12);
}

TEST(Matrix, NormsAndSymmetry) {
  Matrix m(2, 2, {3, 0, 4, 0});
  EXPECT_DOUBLE_EQ(m.frobenius(), 5.0);
  EXPECT_DOUBLE_EQ(m.abs_sum(), 7.0);
  EXPECT_FALSE(m.is_symmetric());
  EXPECT_TRUE(random_symmetric(4, 2).is_symmetric());
  EXPECT_DOUBLE_EQ(m.max_offdiagonal(), 4.0);
}

TEST(Matrix, Log1pElementwise) {
  Matrix m(1, 2, {0.0, std::exp(1.0) - 1.0});
  const Matrix l = m.log1p();
  EXPECT_DOUBLE_EQ(l(0, 0), 0.0);
  EXPECT_NEAR(l(0, 1), 1.0, 1e-12);
}

TEST(JacobiEigen, DiagonalMatrixIsItsOwnDecomposition) {
  Matrix m(3, 3);
  m(0, 0) = 3.0;
  m(1, 1) = -7.0;
  m(2, 2) = 1.0;
  const auto eig = jacobi_eigen(m);
  // Sorted by |value|: -7, 3, 1.
  EXPECT_NEAR(eig.values[0], -7.0, 1e-10);
  EXPECT_NEAR(eig.values[1], 3.0, 1e-10);
  EXPECT_NEAR(eig.values[2], 1.0, 1e-10);
}

TEST(JacobiEigen, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix m(2, 2, {2, 1, 1, 2});
  const auto eig = jacobi_eigen(m);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-10);
  EXPECT_NEAR(eig.values[1], 1.0, 1e-10);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::abs(eig.vectors(0, 0)), std::sqrt(0.5), 1e-8);
  EXPECT_NEAR(std::abs(eig.vectors(1, 0)), std::sqrt(0.5), 1e-8);
}

TEST(JacobiEigen, ReconstructsRandomSymmetric) {
  const Matrix m = random_symmetric(20, 3);
  const auto eig = jacobi_eigen(m);
  // M == E D E^T.
  Matrix d(20, 20);
  for (std::size_t i = 0; i < 20; ++i) d(i, i) = eig.values[i];
  const Matrix recon = eig.vectors.multiply(d).multiply(eig.vectors.transpose());
  EXPECT_NEAR((m - recon).frobenius() / m.frobenius(), 0.0, 1e-8);
}

TEST(JacobiEigen, VectorsAreOrthonormal) {
  const auto eig = jacobi_eigen(random_symmetric(12, 4));
  const Matrix vtv = eig.vectors.transpose().multiply(eig.vectors);
  EXPECT_NEAR((vtv - Matrix::identity(12)).frobenius(), 0.0, 1e-8);
}

TEST(JacobiEigen, RejectsAsymmetric) {
  Matrix m(2, 2, {1, 2, 3, 4});
  EXPECT_THROW(jacobi_eigen(m), ContractViolation);
}

TEST(PowerIteration, FindsDominantEigenpair) {
  Matrix m(2, 2, {2, 1, 1, 2});
  const auto result = power_iteration(m);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.value, 3.0, 1e-8);
}

TEST(PowerIteration, AgreesWithJacobiOnRandomMatrix) {
  const Matrix m = random_symmetric(15, 5);
  const auto eig = jacobi_eigen(m);
  const auto power = power_iteration(m, 5000, 1e-12);
  EXPECT_NEAR(std::abs(power.value), std::abs(eig.values[0]), 1e-6);
}

TEST(PcaSummary, FullRankReconstructsExactly) {
  const Matrix m = random_symmetric(10, 6);
  PcaSummary pca(m);
  EXPECT_NEAR(pca.reconstruction_error(10), 0.0, 1e-8);
}

TEST(PcaSummary, ErrorCurveIsMonotoneNonIncreasing) {
  const Matrix m = random_symmetric(16, 7);
  PcaSummary pca(m);
  const auto curve = pca.error_curve(16);
  ASSERT_EQ(curve.size(), 17u);
  EXPECT_NEAR(curve[0], 1.0, 1e-9);  // k=0 keeps nothing
  for (std::size_t k = 1; k < curve.size(); ++k) {
    EXPECT_LE(curve[k], curve[k - 1] + 1e-9) << "k=" << k;
  }
  EXPECT_NEAR(curve[16], 0.0, 1e-8);
}

TEST(PcaSummary, ErrorCurveMatchesDirectReconstruction) {
  const Matrix m = random_symmetric(12, 8);
  PcaSummary pca(m);
  const auto curve = pca.error_curve(12);
  for (const std::size_t k : {1u, 4u, 9u}) {
    EXPECT_NEAR(curve[k], pca.reconstruction_error(k), 1e-9);
  }
}

TEST(PcaSummary, LowRankMatrixNeedsFewComponents) {
  // Rank-2 matrix: v1 v1^T * 5 + v2 v2^T * 2.
  const std::size_t n = 30;
  Rng rng(9);
  std::vector<double> v1(n), v2(n);
  for (std::size_t i = 0; i < n; ++i) {
    v1[i] = rng.normal();
    v2[i] = rng.normal();
  }
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      m(i, j) = 5.0 * v1[i] * v1[j] + 2.0 * v2[i] * v2[j];
    }
  }
  PcaSummary pca(m);
  EXPECT_LE(pca.rank_for_error(0.01), 2u);
  EXPECT_NEAR(pca.spectral_mass(2), 1.0, 1e-8);
}

TEST(PcaSummary, SpectralMassIsMonotone) {
  PcaSummary pca(random_symmetric(10, 10));
  double prev = 0.0;
  for (std::size_t k = 0; k <= 10; ++k) {
    const double mass = pca.spectral_mass(k);
    EXPECT_GE(mass, prev - 1e-12);
    prev = mass;
  }
  EXPECT_NEAR(prev, 1.0, 1e-12);
}

TEST(FastIca, RecoversLowRankStructureBetterThanNoise) {
  // Two independent sources mixed into 6 channels.
  const std::size_t samples = 400;
  Rng rng(11);
  Matrix data(samples, 6);
  for (std::size_t t = 0; t < samples; ++t) {
    const double s1 = rng.chance(0.5) ? 1.0 : -1.0;                 // binary source
    const double s2 = std::sin(0.1 * static_cast<double>(t)) * 2.0;  // deterministic
    for (std::size_t c = 0; c < 6; ++c) {
      data(t, c) = s1 * (0.3 + 0.1 * static_cast<double>(c)) +
                   s2 * (1.0 - 0.1 * static_cast<double>(c)) + 0.01 * rng.normal();
    }
  }
  FastIca ica;
  const double err2 = ica.reconstruction_error(data, 2);
  EXPECT_LT(err2, 0.1);  // two components capture two sources
  const double err1 = ica.reconstruction_error(data, 1);
  EXPECT_GT(err1, err2);
}

TEST(FastIca, FitReturnsRequestedComponentCount) {
  Rng rng(12);
  Matrix data(100, 5);
  for (std::size_t t = 0; t < 100; ++t) {
    for (std::size_t c = 0; c < 5; ++c) data(t, c) = rng.normal();
  }
  const auto result = FastIca().fit(data, 3);
  EXPECT_EQ(result.components.rows(), 3u);
  EXPECT_EQ(result.components.cols(), 5u);
  EXPECT_EQ(result.sources.rows(), 100u);
  EXPECT_EQ(result.sources.cols(), 3u);
  EXPECT_EQ(result.mixing.rows(), 5u);
  EXPECT_EQ(result.mixing.cols(), 3u);
  EXPECT_THROW(FastIca().fit(data, 0), ContractViolation);
  EXPECT_THROW(FastIca().fit(data, 6), ContractViolation);
}

}  // namespace
}  // namespace ccg

#include "ccg/telemetry/flow_table.hpp"

#include <gtest/gtest.h>

#include "ccg/common/expect.hpp"

namespace ccg {
namespace {

FlowKey key(std::uint32_t local, std::uint16_t lport, std::uint32_t remote,
            std::uint16_t rport) {
  return FlowKey{.local_ip = IpAddr(local),
                 .local_port = lport,
                 .remote_ip = IpAddr(remote),
                 .remote_port = rport,
                 .protocol = Protocol::kTcp};
}

TrafficCounters counters(std::uint64_t bytes) {
  return TrafficCounters{
      .packets_sent = bytes / 1000 + 1, .packets_rcvd = 1, .bytes_sent = bytes, .bytes_rcvd = 64};
}

TEST(FlowTable, AccumulatesWithinInterval) {
  FlowTable table(16);
  std::vector<ConnectionSummary> overflow;
  const auto k = key(1, 40000, 2, 443);
  table.observe(k, counters(100), MinuteBucket(0), overflow);
  table.observe(k, counters(200), MinuteBucket(0), overflow);
  EXPECT_TRUE(overflow.empty());
  EXPECT_EQ(table.occupancy(), 1u);

  const auto batch = table.flush(MinuteBucket(0));
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].counters.bytes_sent, 300u);
  EXPECT_EQ(batch[0].flow, k);
  EXPECT_EQ(batch[0].time, MinuteBucket(0));
}

TEST(FlowTable, FlushResetsCountersButKeepsActiveFlows) {
  FlowTable table(16);
  std::vector<ConnectionSummary> overflow;
  const auto k = key(1, 40000, 2, 443);
  table.observe(k, counters(100), MinuteBucket(0), overflow);
  table.flush(MinuteBucket(0));
  EXPECT_EQ(table.occupancy(), 1u);  // touched entries survive one flush

  // Active again next interval: new record with only the new bytes.
  table.observe(k, counters(50), MinuteBucket(1), overflow);
  const auto batch = table.flush(MinuteBucket(1));
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].counters.bytes_sent, 50u);
}

TEST(FlowTable, IdleFlowsExpireAfterOneQuietInterval) {
  FlowTable table(16);
  std::vector<ConnectionSummary> overflow;
  table.observe(key(1, 40000, 2, 443), counters(100), MinuteBucket(0), overflow);
  table.flush(MinuteBucket(0));
  // No activity in minute 1: the second flush drops the entry.
  const auto batch = table.flush(MinuteBucket(1));
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(table.occupancy(), 0u);
}

TEST(FlowTable, EvictsLruWithExportOnEvict) {
  FlowTable table(2);
  std::vector<ConnectionSummary> overflow;
  table.observe(key(1, 40001, 2, 443), counters(111), MinuteBucket(0), overflow);
  table.observe(key(1, 40002, 2, 443), counters(222), MinuteBucket(0), overflow);
  // Touch the first flow so the second becomes LRU.
  table.observe(key(1, 40001, 2, 443), counters(1), MinuteBucket(0), overflow);
  // Third flow evicts the LRU (40002), exporting its counters.
  table.observe(key(1, 40003, 2, 443), counters(333), MinuteBucket(0), overflow);

  ASSERT_EQ(overflow.size(), 1u);
  EXPECT_EQ(overflow[0].flow.local_port, 40002);
  EXPECT_EQ(overflow[0].counters.bytes_sent, 222u);
  EXPECT_EQ(table.occupancy(), 2u);
  EXPECT_EQ(table.stats().evictions, 1u);

  // Nothing lost: flush + overflow covers all three flows' bytes.
  const auto batch = table.flush(MinuteBucket(0));
  std::uint64_t total = overflow[0].counters.bytes_sent;
  for (const auto& rec : batch) total += rec.counters.bytes_sent;
  EXPECT_EQ(total, 111u + 222u + 333u + 1u);
}

TEST(FlowTable, StatsTrackPeakAndCounts) {
  FlowTable table(100);
  std::vector<ConnectionSummary> overflow;
  for (std::uint16_t p = 0; p < 10; ++p) {
    table.observe(key(1, static_cast<std::uint16_t>(40000 + p), 2, 443),
                  counters(10), MinuteBucket(0), overflow);
  }
  EXPECT_EQ(table.stats().updates, 10u);
  EXPECT_EQ(table.stats().flows_inserted, 10u);
  EXPECT_EQ(table.stats().peak_occupancy, 10u);
  EXPECT_EQ(table.memory_bytes(), 10 * FlowTable::kBytesPerEntry);

  const auto batch = table.flush(MinuteBucket(0));
  EXPECT_EQ(batch.size(), 10u);
  EXPECT_EQ(table.stats().records_emitted, 10u);
}

TEST(FlowTable, EmptyCountersProduceNoRecord) {
  FlowTable table(4);
  std::vector<ConnectionSummary> overflow;
  table.observe(key(1, 40000, 2, 443), TrafficCounters{}, MinuteBucket(0), overflow);
  EXPECT_TRUE(table.flush(MinuteBucket(0)).empty());
}

TEST(FlowTable, InitiatorLatchedOnFirstObservation) {
  FlowTable table(8);
  std::vector<ConnectionSummary> overflow;
  const auto k = key(1, 40000, 2, 443);
  table.observe(k, counters(10), MinuteBucket(0), overflow, Initiator::kLocal);
  // Later updates with unknown/contradicting direction do not overwrite.
  table.observe(k, counters(10), MinuteBucket(0), overflow, Initiator::kUnknown);
  table.observe(k, counters(10), MinuteBucket(0), overflow, Initiator::kRemote);
  const auto batch = table.flush(MinuteBucket(0));
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].initiator, Initiator::kLocal);

  // Unknown-first flows pick up direction when it becomes known.
  const auto k2 = key(1, 40001, 2, 443);
  table.observe(k2, counters(10), MinuteBucket(1), overflow, Initiator::kUnknown);
  table.observe(k2, counters(10), MinuteBucket(1), overflow, Initiator::kRemote);
  const auto batch2 = table.flush(MinuteBucket(1));
  for (const auto& rec : batch2) {
    if (rec.flow == k2) {
      EXPECT_EQ(rec.initiator, Initiator::kRemote);
    }
  }
}

TEST(FlowTable, RejectsZeroCapacity) {
  EXPECT_THROW(FlowTable(0), ContractViolation);
}

}  // namespace
}  // namespace ccg

#include "ccg/policy/policy_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ccg {
namespace {

ReachabilityPolicy sample_policy() {
  ReachabilityPolicy p;
  p.allow({.from_segment = 0, .to_segment = 1, .server_port = 8080});
  p.allow({.from_segment = 1, .to_segment = 2, .server_port = 5432});
  p.allow({.from_segment = kExternalSegment, .to_segment = 0, .server_port = 443});
  p.allow({.from_segment = 2, .to_segment = kExternalSegment, .server_port = 443});
  return p;
}

TEST(PolicyIo, RoundTrips) {
  const ReachabilityPolicy original = sample_policy();
  std::stringstream buffer;
  write_policy(buffer, original);
  const auto loaded = read_policy(buffer);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->rule_count(), original.rule_count());
  for (const AllowRule& rule : original.rules()) {
    EXPECT_TRUE(loaded->allows(rule)) << to_string(rule);
  }
}

TEST(PolicyIo, ExternalSegmentUsesToken) {
  std::stringstream buffer;
  write_policy(buffer, sample_policy());
  EXPECT_NE(buffer.str().find("allow ext 0 443"), std::string::npos);
  EXPECT_NE(buffer.str().find("allow 2 ext 443"), std::string::npos);
}

TEST(PolicyIo, OutputIsDeterministicallySorted) {
  std::stringstream a, b;
  write_policy(a, sample_policy());
  write_policy(b, sample_policy());
  EXPECT_EQ(a.str(), b.str());
}

TEST(PolicyIo, RejectsCorruptInput) {
  {
    std::stringstream bad("ccgpolicy-v2 1\nallow 0 1 80\n");
    EXPECT_FALSE(read_policy(bad).has_value());
  }
  {
    std::stringstream truncated("ccgpolicy-v1 2\nallow 0 1 80\n");
    EXPECT_FALSE(read_policy(truncated).has_value());
  }
  {
    std::stringstream bad_port("ccgpolicy-v1 1\nallow 0 1 99999\n");
    EXPECT_FALSE(read_policy(bad_port).has_value());
  }
  {
    std::stringstream bad_seg("ccgpolicy-v1 1\nallow zero 1 80\n");
    EXPECT_FALSE(read_policy(bad_seg).has_value());
  }
  {
    std::stringstream empty("");
    EXPECT_FALSE(read_policy(empty).has_value());
  }
}

TEST(PolicyDiffTest, DetectsAddedAndRemoved) {
  ReachabilityPolicy prev = sample_policy();
  ReachabilityPolicy next = sample_policy();
  next.allow({.from_segment = 0, .to_segment = 3, .server_port = 9090});
  const auto diff = diff_policies(prev, next);
  ASSERT_EQ(diff.added.size(), 1u);
  EXPECT_EQ(diff.added[0].to_segment, 3u);
  EXPECT_TRUE(diff.removed.empty());
  EXPECT_EQ(diff.unchanged, prev.rule_count());
  EXPECT_FALSE(diff.empty());
  EXPECT_EQ(diff.summary(), "+1 / -0 rules (4 unchanged)");

  const auto reverse = diff_policies(next, prev);
  EXPECT_EQ(reverse.removed.size(), 1u);
  EXPECT_TRUE(reverse.added.empty());
}

TEST(PolicyDiffTest, IdenticalPoliciesAreEmptyDiff) {
  const auto diff = diff_policies(sample_policy(), sample_policy());
  EXPECT_TRUE(diff.empty());
  EXPECT_EQ(diff.unchanged, 4u);
}

TEST(AllowRuleToString, Renders) {
  EXPECT_EQ(to_string(AllowRule{.from_segment = 3, .to_segment = kExternalSegment,
                                .server_port = 443}),
            "allow 3 -> ext:443");
}

}  // namespace
}  // namespace ccg

#include "ccg/net/frame.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <thread>
#include <vector>

namespace ccg::net {
namespace {

std::vector<std::uint8_t> bytes(std::initializer_list<int> xs) {
  std::vector<std::uint8_t> out;
  for (int x : xs) out.push_back(static_cast<std::uint8_t>(x));
  return out;
}

TEST(FrameConn, RoundTripOverSocketpair) {
  auto pair = socket_pair();
  ASSERT_TRUE(pair.has_value());
  const auto sent = bytes({1, 2, 3, 250, 251, 252});
  ASSERT_TRUE(pair->first.send(sent));
  std::vector<std::uint8_t> got;
  EXPECT_EQ(pair->second.recv(got, 1000), RecvStatus::kOk);
  EXPECT_EQ(got, sent);
}

TEST(FrameConn, EmptyAndLargePayloadsSurvive) {
  auto pair = socket_pair();
  ASSERT_TRUE(pair.has_value());
  std::vector<std::uint8_t> big(1 << 20);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 2654435761u);
  }
  // Send from a thread: a 1 MiB frame exceeds the socket buffer, so the
  // sender blocks until the receiver drains.
  std::thread sender([&] {
    ASSERT_TRUE(pair->first.send({}));
    ASSERT_TRUE(pair->first.send(big));
  });
  std::vector<std::uint8_t> got;
  EXPECT_EQ(pair->second.recv(got, 5000), RecvStatus::kOk);
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(pair->second.recv(got, 5000), RecvStatus::kOk);
  EXPECT_EQ(got, big);
  sender.join();
}

TEST(FrameConn, ManyFramesArriveInOrder) {
  auto pair = socket_pair();
  ASSERT_TRUE(pair.has_value());
  for (int i = 0; i < 100; ++i) {
    std::vector<std::uint8_t> payload(static_cast<std::size_t>(i) + 1,
                                      static_cast<std::uint8_t>(i));
    ASSERT_TRUE(pair->first.send(payload));
  }
  for (int i = 0; i < 100; ++i) {
    std::vector<std::uint8_t> got;
    ASSERT_EQ(pair->second.recv(got, 1000), RecvStatus::kOk);
    ASSERT_EQ(got.size(), static_cast<std::size_t>(i) + 1);
    EXPECT_EQ(got[0], static_cast<std::uint8_t>(i));
  }
}

TEST(FrameConn, CleanEofAtFrameBoundary) {
  auto pair = socket_pair();
  ASSERT_TRUE(pair.has_value());
  ASSERT_TRUE(pair->first.send(bytes({9})));
  pair->first.close();
  std::vector<std::uint8_t> got;
  EXPECT_EQ(pair->second.recv(got, 1000), RecvStatus::kOk);
  EXPECT_EQ(pair->second.recv(got, 1000), RecvStatus::kEof);
}

TEST(FrameConn, TornFrameIsAnErrorNotEof) {
  auto pair = socket_pair();
  ASSERT_TRUE(pair.has_value());
  // Raw length prefix promising 100 bytes, then only 3, then close: the
  // reader must report a torn stream, not a clean end.
  const std::uint8_t raw[] = {100, 0, 0, 0, 1, 2, 3};
  ASSERT_EQ(::send(pair->first.fd(), raw, sizeof(raw), 0),
            static_cast<ssize_t>(sizeof(raw)));
  pair->first.close();
  std::vector<std::uint8_t> got;
  EXPECT_EQ(pair->second.recv(got, 1000), RecvStatus::kError);
}

TEST(FrameConn, CrcCorruptionRejected) {
  auto pair = socket_pair();
  ASSERT_TRUE(pair.has_value());
  // A frame is len | payload | crc: flip one payload bit after framing.
  const auto payload = bytes({10, 20, 30, 40});
  ASSERT_TRUE(pair->first.send(payload));
  // Capture the valid frame bytes by reading them raw off the wire...
  std::uint8_t raw[64];
  const ssize_t n = ::recv(pair->second.fd(), raw, sizeof(raw), 0);
  ASSERT_EQ(n, static_cast<ssize_t>(4 + payload.size() + 4));
  raw[5] ^= 0x01;  // payload byte
  // ...and replay the corrupted copy in the other direction.
  ASSERT_EQ(::send(pair->second.fd(), raw, static_cast<std::size_t>(n), 0), n);
  std::vector<std::uint8_t> got;
  EXPECT_EQ(pair->first.recv(got, 1000), RecvStatus::kError);
}

TEST(FrameConn, OversizedLengthPrefixRejected) {
  auto pair = socket_pair();
  ASSERT_TRUE(pair.has_value());
  // 0xFFFFFFFF length: must be treated as corruption, not an allocation.
  const std::uint8_t raw[] = {0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0};
  ASSERT_EQ(::send(pair->first.fd(), raw, sizeof(raw), 0),
            static_cast<ssize_t>(sizeof(raw)));
  std::vector<std::uint8_t> got;
  EXPECT_EQ(pair->second.recv(got, 1000), RecvStatus::kError);
}

TEST(FrameConn, RecvTimesOutWhenPeerSilent) {
  auto pair = socket_pair();
  ASSERT_TRUE(pair.has_value());
  std::vector<std::uint8_t> got;
  EXPECT_EQ(pair->second.recv(got, 50), RecvStatus::kTimeout);
  // The connection survives a timeout: a late frame still arrives.
  ASSERT_TRUE(pair->first.send(bytes({1})));
  EXPECT_EQ(pair->second.recv(got, 1000), RecvStatus::kOk);
}

TEST(FrameConn, SendOnClosedPeerFails) {
  auto pair = socket_pair();
  ASSERT_TRUE(pair.has_value());
  pair->second.close();
  // The first send may land in the kernel buffer; repeated sends must
  // surface the broken pipe (and must not raise SIGPIPE).
  bool failed = false;
  for (int i = 0; i < 64 && !failed; ++i) {
    failed = !pair->first.send(std::vector<std::uint8_t>(1024, 7));
  }
  EXPECT_TRUE(failed);
}

TEST(Listener, LoopbackConnectAndAccept) {
  auto listener = Listener::bind_loopback();
  ASSERT_TRUE(listener.has_value());
  ASSERT_NE(listener->port(), 0);

  auto client = connect_loopback(listener->port());
  ASSERT_TRUE(client.has_value());
  auto server = listener->accept(1000);
  ASSERT_TRUE(server.has_value());

  ASSERT_TRUE(client->send(bytes({42})));
  std::vector<std::uint8_t> got;
  EXPECT_EQ(server->recv(got, 1000), RecvStatus::kOk);
  EXPECT_EQ(got, bytes({42}));
}

TEST(Listener, AcceptTimesOutWithoutClient) {
  auto listener = Listener::bind_loopback();
  ASSERT_TRUE(listener.has_value());
  EXPECT_FALSE(listener->accept(50).has_value());
}

TEST(Listener, ConnectRetriesUntilListenerAppears) {
  // Grab an ephemeral port, then close it so nothing is listening.
  std::uint16_t port = 0;
  {
    auto probe = Listener::bind_loopback();
    ASSERT_TRUE(probe.has_value());
    port = probe->port();
  }
  // Backoff starts at 10 ms, so binding the listener from a thread ~50 ms
  // in exercises the retry loop's success path.
  std::thread late_listener([port] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    auto listener = Listener::bind_loopback(port);
    if (!listener) return;  // port raced away; connect_loopback will fail
    auto conn = listener->accept(2000);
    if (conn) {
      std::vector<std::uint8_t> got;
      conn->recv(got, 2000);
    }
  });
  auto client = connect_loopback(port, 20);
  if (client) {
    EXPECT_TRUE(client->send(bytes({1})));
  }
  late_listener.join();
  EXPECT_TRUE(client.has_value());
}

TEST(Listener, ConnectGivesUpAfterRetriesExhausted) {
  std::uint16_t port = 0;
  {
    auto probe = Listener::bind_loopback();
    ASSERT_TRUE(probe.has_value());
    port = probe->port();
  }
  EXPECT_FALSE(connect_loopback(port, 2).has_value());
}

TEST(NetKnobs, EnvDefaultsAreSane) {
  // Unset in the test environment: documented defaults apply.
  EXPECT_GE(configured_retries(), 1);
  EXPECT_GE(configured_timeout_ms(), 0);
}

}  // namespace
}  // namespace ccg::net

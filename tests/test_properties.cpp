// Property-style parameterized sweeps: invariants that must hold across
// seeds, shard counts, facets, provider profiles and collapse thresholds —
// the places where "works on one example" hides bugs.
#include <gtest/gtest.h>

#include "ccg/analytics/pipeline.hpp"
#include "ccg/graph/builder.hpp"
#include "ccg/graph/metrics.hpp"
#include "ccg/segmentation/auto_segment.hpp"
#include "ccg/telemetry/collector.hpp"
#include "ccg/workload/driver.hpp"
#include "ccg/workload/presets.hpp"

namespace ccg {
namespace {

/// One simulated tiny-cluster hour per seed, memoized across tests.
const std::vector<ConnectionSummary>& records_for_seed(std::uint64_t seed) {
  static std::map<std::uint64_t, std::vector<ConnectionSummary>> cache;
  auto it = cache.find(seed);
  if (it != cache.end()) return it->second;

  Cluster cluster(presets::tiny(), seed);
  TelemetryHub hub(ProviderProfile::azure(), seed);
  SimulationDriver driver(cluster, hub);
  std::vector<ConnectionSummary> all;
  for (std::int64_t m = 0; m < 60; ++m) {
    const auto batch = driver.step(MinuteBucket(m));
    all.insert(all.end(), batch.begin(), batch.end());
  }
  return cache.emplace(seed, std::move(all)).first->second;
}

std::unordered_set<IpAddr> monitored_for_seed(std::uint64_t seed) {
  std::unordered_set<IpAddr> out;
  for (const auto& r : records_for_seed(seed)) out.insert(r.flow.local_ip);
  return out;
}

// --- Graph construction invariants across seeds -----------------------------

class GraphInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GraphInvariants, NodeStatsAreConsistentWithEdges) {
  const auto& records = records_for_seed(GetParam());
  GraphBuilder builder({.facet = GraphFacet::kIp, .window_minutes = 60},
                       monitored_for_seed(GetParam()));
  for (const auto& r : records) builder.ingest(r);
  builder.flush();
  const CommGraph& g = builder.graphs().at(0);

  ASSERT_GT(g.node_count(), 0u);
  ASSERT_GT(g.edge_count(), 0u);

  // Node byte totals are exactly the sum of incident edge volumes; total
  // node bytes double-count every edge.
  std::vector<std::uint64_t> per_node(g.node_count(), 0);
  std::uint64_t edge_total = 0;
  for (const Edge& e : g.edges()) {
    EXPECT_NE(e.a, e.b);
    EXPECT_GT(e.stats.bytes() + e.stats.packets(), 0u);
    EXPECT_GE(e.stats.active_minutes, 1u);
    EXPECT_GE(e.stats.connection_minutes, 1u);
    per_node[e.a] += e.stats.bytes();
    per_node[e.b] += e.stats.bytes();
    edge_total += e.stats.bytes();
  }
  EXPECT_EQ(edge_total, g.total_bytes());
  std::uint64_t node_total = 0;
  for (NodeId i = 0; i < g.node_count(); ++i) {
    EXPECT_EQ(per_node[i], g.node_stats(i).bytes);
    node_total += g.node_stats(i).bytes;
  }
  EXPECT_EQ(node_total, 2 * edge_total);
}

TEST_P(GraphInvariants, IpPortFacetRefinesIpFacet) {
  const auto& records = records_for_seed(GetParam());
  const auto monitored = monitored_for_seed(GetParam());
  GraphBuilder ip({.facet = GraphFacet::kIp, .window_minutes = 60}, monitored);
  GraphBuilder port({.facet = GraphFacet::kIpPort, .window_minutes = 60}, monitored);
  for (const auto& r : records) {
    ip.ingest(r);
    port.ingest(r);
  }
  ip.flush();
  port.flush();
  const CommGraph& gi = ip.graphs().at(0);
  const CommGraph& gp = port.graphs().at(0);
  // The port facet splits nodes, never merges them, and both facets carry
  // the same traffic volume.
  EXPECT_GE(gp.node_count(), gi.node_count());
  EXPECT_GE(gp.edge_count(), gi.edge_count());
  EXPECT_EQ(gp.total_bytes(), gi.total_bytes());
}

TEST_P(GraphInvariants, CollapseIsMonotoneAndLossBounded) {
  const auto& records = records_for_seed(GetParam());
  GraphBuilder builder({.facet = GraphFacet::kIp, .window_minutes = 60},
                       monitored_for_seed(GetParam()));
  for (const auto& r : records) builder.ingest(r);
  builder.flush();
  const CommGraph full = builder.take_graphs().at(0);

  std::size_t prev_nodes = full.node_count() + 1;
  std::uint64_t prev_bytes = full.total_bytes() + 1;
  std::size_t monitored_count = 0;
  for (NodeId i = 0; i < full.node_count(); ++i) {
    monitored_count += full.node_stats(i).monitored;
  }
  for (const double threshold : {0.0, 0.001, 0.01, 0.1}) {
    const CommGraph collapsed = collapse_heavy_hitters(full, threshold);
    EXPECT_LE(collapsed.node_count(), prev_nodes);
    EXPECT_LE(collapsed.total_bytes(), prev_bytes);
    prev_nodes = collapsed.node_count();
    prev_bytes = collapsed.total_bytes();

    std::size_t still_monitored = 0;
    for (NodeId i = 0; i < collapsed.node_count(); ++i) {
      still_monitored += collapsed.node_stats(i).monitored;
    }
    EXPECT_EQ(still_monitored, monitored_count) << "monitored nodes are exempt";
  }
}

TEST_P(GraphInvariants, SegmentationLabelsAreWellFormed) {
  const auto& records = records_for_seed(GetParam());
  GraphBuilder builder({.facet = GraphFacet::kIp, .window_minutes = 60},
                       monitored_for_seed(GetParam()));
  for (const auto& r : records) builder.ingest(r);
  builder.flush();
  const CommGraph g = builder.take_graphs().at(0);

  for (const auto method :
       {SegmentationMethod::kJaccardLouvain, SegmentationMethod::kByteModularity}) {
    const Segmentation seg = auto_segment(g, method);
    ASSERT_EQ(seg.labels.size(), g.node_count());
    std::vector<bool> used(seg.segment_count, false);
    for (const auto label : seg.labels) {
      ASSERT_LT(label, seg.segment_count);
      used[label] = true;
    }
    for (const bool u : used) EXPECT_TRUE(u) << "labels must be dense";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphInvariants,
                         ::testing::Values(1u, 7u, 42u, 1337u, 99999u));

// --- Sharded pipeline equals the single-threaded builder --------------------

class ShardEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShardEquivalence, MatchesReferenceBuilder) {
  constexpr std::uint64_t kSeed = 17;
  const auto& records = records_for_seed(kSeed);
  const auto monitored = monitored_for_seed(kSeed);

  GraphBuilder reference({.facet = GraphFacet::kIp, .window_minutes = 60}, monitored);
  for (const auto& r : records) reference.ingest(r);
  reference.flush();
  const CommGraph expected = reference.take_graphs().at(0);

  ShardedGraphPipeline pipeline(
      {.shards = GetParam(),
       .graph = {.facet = GraphFacet::kIp, .window_minutes = 60}},
      monitored);
  pipeline.on_batch(MinuteBucket(0), records);
  const auto got = pipeline.finish();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].node_count(), expected.node_count());
  EXPECT_EQ(got[0].edge_count(), expected.edge_count());
  EXPECT_EQ(got[0].total_bytes(), expected.total_bytes());
}

INSTANTIATE_TEST_SUITE_P(Shards, ShardEquivalence,
                         ::testing::Values(1u, 2u, 3u, 4u, 7u, 8u));

// --- Provider sampling keeps estimates sane across profiles -----------------

struct SamplingCase {
  double packet_rate;
  double flow_rate;
};

class SamplingInvariants : public ::testing::TestWithParam<SamplingCase> {};

TEST_P(SamplingInvariants, SampledGraphIsSubsetWithBoundedVolume) {
  constexpr std::uint64_t kSeed = 23;
  ProviderProfile profile = ProviderProfile::azure();
  profile.packet_sample_rate = GetParam().packet_rate;
  profile.flow_sample_rate = GetParam().flow_rate;

  Cluster cluster(presets::tiny(), kSeed);
  TelemetryHub hub(profile, kSeed);
  SimulationDriver driver(cluster, hub);
  const auto ips = cluster.monitored_ips();
  GraphBuilder builder({.facet = GraphFacet::kIp, .window_minutes = 60},
                       {ips.begin(), ips.end()});
  hub.set_sink(&builder);
  driver.run(TimeWindow::hour(0));
  builder.flush();
  const CommGraph sampled = builder.take_graphs().at(0);

  // Reference without sampling, same seed -> same traffic.
  const auto& reference_records = records_for_seed(kSeed);
  GraphBuilder ref_builder({.facet = GraphFacet::kIp, .window_minutes = 60},
                           monitored_for_seed(kSeed));
  for (const auto& r : reference_records) ref_builder.ingest(r);
  ref_builder.flush();
  const CommGraph reference = ref_builder.take_graphs().at(0);

  EXPECT_LE(sampled.node_count(), reference.node_count());
  EXPECT_LE(sampled.edge_count(), reference.edge_count());
  // Scaled-up estimates stay within a loose factor of the truth.
  if (sampled.total_bytes() > 0) {
    const double ratio = static_cast<double>(sampled.total_bytes()) /
                         static_cast<double>(reference.total_bytes());
    EXPECT_GT(ratio, 0.2) << "estimates collapsed";
    EXPECT_LT(ratio, 2.0) << "estimates exploded";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Rates, SamplingInvariants,
    ::testing::Values(SamplingCase{1.0, 1.0}, SamplingCase{0.5, 1.0},
                      SamplingCase{0.1, 1.0}, SamplingCase{1.0, 0.5},
                      SamplingCase{0.25, 0.75}, SamplingCase{0.03, 0.5}));

}  // namespace
}  // namespace ccg

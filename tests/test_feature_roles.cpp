#include "ccg/segmentation/feature_roles.hpp"

#include <gtest/gtest.h>

#include "ccg/common/expect.hpp"
#include "ccg/graph/builder.hpp"
#include "ccg/segmentation/cluster_metrics.hpp"
#include "ccg/telemetry/collector.hpp"
#include "ccg/workload/driver.hpp"
#include "ccg/workload/presets.hpp"

namespace ccg {
namespace {

struct SimulatedGraph {
  Cluster cluster{presets::tiny(), 7};
  CommGraph graph;

  SimulatedGraph() {
    TelemetryHub hub(ProviderProfile::azure(), 7);
    SimulationDriver driver(cluster, hub);
    const auto ips = cluster.monitored_ips();
    GraphBuilder builder({.facet = GraphFacet::kIp, .window_minutes = 60},
                         {ips.begin(), ips.end()});
    hub.set_sink(&builder);
    driver.run(TimeWindow::hour(0));
    builder.flush();
    graph = builder.take_graphs().at(0);
  }
};

TEST(FeatureRoles, MatrixShapeAndRanges) {
  SimulatedGraph sim;
  const Matrix base = node_feature_matrix(sim.graph, /*recursive=*/false);
  EXPECT_EQ(base.rows(), sim.graph.node_count());
  EXPECT_EQ(base.cols(), node_feature_names().size());
  const Matrix recursive = node_feature_matrix(sim.graph, /*recursive=*/true);
  EXPECT_EQ(recursive.cols(), 2 * base.cols());

  for (std::size_t r = 0; r < base.rows(); ++r) {
    // Shares are in [0, 1]; logs are non-negative.
    EXPECT_GE(base(r, 3), 0.0);
    EXPECT_LE(base(r, 3) + base(r, 4), 1.0 + 1e-12);
    EXPECT_GE(base(r, 0), 0.0);
    EXPECT_GE(base(r, 6), 0.0);
    EXPECT_LE(base(r, 6), 1.0 + 1e-12);
  }
}

TEST(FeatureRoles, ClientsAreInitiatorsServersAreResponders) {
  SimulatedGraph sim;
  const Matrix base = node_feature_matrix(sim.graph, false);
  for (NodeId i = 0; i < sim.graph.node_count(); ++i) {
    const auto role = sim.cluster.role_of(sim.graph.key(i).ip);
    if (!role) continue;
    if (*role == "client") EXPECT_GT(base(i, 3), 0.9) << "client initiates";
    if (*role == "db") EXPECT_GT(base(i, 4), 0.9) << "db only responds";
  }
}

TEST(FeatureRoles, RecoversTinyClusterRolesWithOracleK) {
  SimulatedGraph sim;
  const auto truth = ground_truth_labels(sim.graph, sim.cluster.ground_truth_roles());
  const Segmentation seg = feature_role_segmentation(sim.graph, 4);
  const auto agreement = compare_labelings(seg.labels, truth.labels, truth.mask);
  EXPECT_GT(agreement.ari, 0.8) << agreement.to_string();
}

TEST(FeatureRoles, ValidatesK) {
  SimulatedGraph sim;
  EXPECT_THROW(feature_role_segmentation(sim.graph, 0), ContractViolation);
  EXPECT_THROW(feature_role_segmentation(sim.graph, sim.graph.node_count() + 1),
               ContractViolation);
  EXPECT_THROW(feature_role_segmentation(CommGraph{}, 1), ContractViolation);
}

TEST(FeatureRoles, SegmentCountMatchesRequestedK) {
  SimulatedGraph sim;
  const Segmentation seg = feature_role_segmentation(sim.graph, 3);
  EXPECT_EQ(seg.segment_count, 3u);
  for (const auto label : seg.labels) EXPECT_LT(label, 3u);
}

}  // namespace
}  // namespace ccg

#include "ccg/analytics/fct.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ccg/common/expect.hpp"

namespace ccg {
namespace {

CommGraph one_hour_graph_with_node_bytes(std::uint64_t bytes) {
  CommGraph g(TimeWindow::hour(0));
  const NodeId a = g.add_node(NodeKey::for_ip(IpAddr(1u)));
  g.set_monitored(a, true);
  const NodeId b = g.add_node(NodeKey::for_ip(IpAddr(2u)));
  g.add_edge_volume(a, b, bytes, 0, bytes / 1000, 0, 1, 60);
  return g;
}

TEST(Fct, UtilizationFromWindowVolume) {
  // 3600 GB over an hour at 1 GB/s -> rho = 1.0.
  const CommGraph g = one_hour_graph_with_node_bytes(3'600'000'000'000ull);
  EXPECT_NEAR(node_utilization(g, 0, 1e9), 1.0, 1e-9);
  EXPECT_NEAR(node_utilization(g, 0, 2e9), 0.5, 1e-9);
  EXPECT_THROW(node_utilization(g, 0, 0.0), ContractViolation);
}

TEST(Fct, Mg1psBasics) {
  // 1 MB at 1 MB/s idle -> 1 s; at rho 0.5 -> 2 s.
  EXPECT_DOUBLE_EQ(mg1ps_fct_seconds(1e6, 1e6, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(mg1ps_fct_seconds(1e6, 1e6, 0.5), 2.0);
  EXPECT_TRUE(std::isinf(mg1ps_fct_seconds(1e6, 1e6, 1.0)));
  EXPECT_TRUE(std::isinf(mg1ps_fct_seconds(1e6, 1e6, 1.7)));
  EXPECT_DOUBLE_EQ(mg1ps_fct_seconds(0.0, 1e6, 0.2), 0.0);
  // Negative rho is clamped to idle.
  EXPECT_DOUBLE_EQ(mg1ps_fct_seconds(1e6, 1e6, -0.5), 1.0);
}

TEST(Fct, PercentilesMonotoneInLoad) {
  PercentileSketch sizes;
  for (int i = 1; i <= 100; ++i) sizes.add(i * 1000.0);
  const auto idle = fct_percentiles(sizes, 1e6, 0.0);
  const auto busy = fct_percentiles(sizes, 1e6, 0.8);
  EXPECT_LT(idle.p50, idle.p90);
  EXPECT_LT(idle.p90, idle.p99);
  EXPECT_GT(busy.p99, idle.p99);
  EXPECT_NEAR(busy.p50 / idle.p50, 5.0, 1e-9);  // 1/(1-0.8)
  EXPECT_FALSE(idle.overloaded);
  const auto melted = fct_percentiles(sizes, 1e6, 1.2);
  EXPECT_TRUE(melted.overloaded);
  EXPECT_TRUE(std::isinf(melted.p99));
}

TEST(Fct, DefaultLadderIsSorted) {
  const auto ladder = default_sku_ladder();
  ASSERT_GE(ladder.size(), 2u);
  for (std::size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_GT(ladder[i].nic_bytes_per_second, ladder[i - 1].nic_bytes_per_second);
  }
}

TEST(Fct, SkuUpgradePicksSmallestSufficientTier) {
  // Node pushes 900 GB in the hour -> 0.25 GB/s: rho=2.0 on 1G(0.125GB/s),
  // 1.0 on 2G, 0.5 on 4G -> first tier with rho <= 0.6 is 4G.
  const CommGraph g = one_hour_graph_with_node_bytes(900'000'000'000ull);
  PercentileSketch sizes;
  for (int i = 1; i <= 100; ++i) sizes.add(i * 10000.0);

  const auto ladder = default_sku_ladder();
  const auto analysis = sku_upgrade_analysis(g, sizes, ladder[0], ladder, 3, 0.6);
  ASSERT_EQ(analysis.size(), 1u);  // only one monitored node
  const auto& w = analysis[0];
  EXPECT_EQ(w.from.name, "1G");
  EXPECT_EQ(w.to.name, "4G");
  EXPECT_GT(w.utilization_before, 1.0);
  EXPECT_TRUE(w.fct_before.overloaded);
  EXPECT_LE(w.utilization_after, 0.6);
  EXPECT_FALSE(w.fct_after.overloaded);
  EXPECT_TRUE(std::isinf(w.p99_speedup));
  EXPECT_NE(w.to_string().find("p99 FCT"), std::string::npos);
}

TEST(Fct, AlreadyComfortableNodesKeepSmallTier) {
  const CommGraph g = one_hour_graph_with_node_bytes(10'000'000'000ull);  // ~2.8MB/s
  PercentileSketch sizes;
  sizes.add(1e6);
  const auto ladder = default_sku_ladder();
  const auto analysis = sku_upgrade_analysis(g, sizes, ladder[0], ladder, 3, 0.6);
  ASSERT_EQ(analysis.size(), 1u);
  EXPECT_EQ(analysis[0].to.name, "1G");
  EXPECT_NEAR(analysis[0].p99_speedup, 1.0, 1e-6);
}

TEST(Fct, SkuAnalysisValidatesInput) {
  const CommGraph g = one_hour_graph_with_node_bytes(1000);
  PercentileSketch empty;
  const auto ladder = default_sku_ladder();
  EXPECT_THROW(sku_upgrade_analysis(g, empty, ladder[0], ladder), ContractViolation);
  PercentileSketch sizes;
  sizes.add(1.0);
  EXPECT_THROW(sku_upgrade_analysis(g, sizes, ladder[0], {}), ContractViolation);
  EXPECT_THROW(sku_upgrade_analysis(g, sizes, ladder[0], ladder, 3, 1.5),
               ContractViolation);
}

}  // namespace
}  // namespace ccg

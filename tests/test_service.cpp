#include "ccg/analytics/service.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "ccg/common/expect.hpp"
#include "ccg/workload/driver.hpp"
#include "ccg/workload/presets.hpp"

namespace ccg {
namespace {

class ServiceTest : public ::testing::Test {
 protected:
  std::vector<WindowReport> run_hours(int hours, bool attack_last_hour) {
    Cluster cluster(presets::tiny(), 4242);
    TelemetryHub hub(ProviderProfile::azure(), 4242);
    SimulationDriver driver(cluster, hub);
    if (attack_last_hour) {
      driver.add_injector(std::make_unique<ScanAttack>(
          ScanAttack::Config{.active = TimeWindow::hour(hours - 1),
                             .targets_per_minute = 8,
                             .ports_per_target = 3},
          7));
    }

    std::vector<WindowReport> reports;
    const auto ips = cluster.monitored_ips();
    AnalyticsService service(
        {.graph = {.facet = GraphFacet::kIp, .window_minutes = 60},
         .training_windows = 3,
         .spectral = {.rank = 8},
         // Scan probes are tiny; lower the localizer's volume floor so the
         // attack test can see them (quiet hours still stay quiet).
         .edge_detector = {.min_bytes = 500}},
        {ips.begin(), ips.end()},
        [&](const WindowReport& r) { reports.push_back(r); });
    hub.set_sink(&service);
    driver.run(TimeWindow::minutes(0, hours * 60));
    service.flush();
    EXPECT_EQ(service.windows_reported(), reports.size());
    return reports;
  }
};

TEST_F(ServiceTest, ReportsOneWindowPerHourInOrder) {
  const auto reports = run_hours(5, false);
  ASSERT_EQ(reports.size(), 5u);
  for (std::size_t h = 0; h < reports.size(); ++h) {
    EXPECT_EQ(reports[h].window, TimeWindow::hour(static_cast<std::int64_t>(h)));
    EXPECT_GT(reports[h].nodes, 0u);
    EXPECT_GT(reports[h].bytes, 0u);
  }
}

TEST_F(ServiceTest, TrainsThenScores) {
  const auto reports = run_hours(5, false);
  ASSERT_EQ(reports.size(), 5u);
  for (std::size_t h = 0; h < 3; ++h) {
    EXPECT_FALSE(reports[h].trained) << h;
    EXPECT_FALSE(reports[h].anomaly.has_value());
  }
  for (std::size_t h = 3; h < 5; ++h) {
    EXPECT_TRUE(reports[h].trained) << h;
    ASSERT_TRUE(reports[h].anomaly.has_value());
    EXPECT_FALSE(reports[h].alert) << reports[h].anomaly->to_string();
  }
}

TEST_F(ServiceTest, QuietHoursHaveStableSegmentsAndFewEdgeAnomalies) {
  const auto reports = run_hours(5, false);
  for (std::size_t h = 1; h < reports.size(); ++h) {
    EXPECT_EQ(reports[h].segments.relabeled_nodes, 0u) << h;
    EXPECT_LE(reports[h].anomalous_edges.size(), 2u) << h;
  }
}

TEST_F(ServiceTest, AttackHourAlertsAndLocalizes) {
  const auto reports = run_hours(6, true);
  ASSERT_EQ(reports.size(), 6u);
  const WindowReport& attacked = reports.back();
  ASSERT_TRUE(attacked.trained);
  EXPECT_TRUE(attacked.alert) << attacked.anomaly->to_string();
  EXPECT_GT(attacked.anomalous_edges.size(), 3u) << "scan edges localized";
  // The quiet scored hours before it stayed quiet.
  for (std::size_t h = 3; h + 1 < reports.size(); ++h) {
    EXPECT_FALSE(reports[h].alert) << h;
  }
  EXPECT_NE(attacked.summary().find("ALERT"), std::string::npos);
}

TEST(ServiceValidation, RejectsBadOptions) {
  auto noop = [](const WindowReport&) {};
  EXPECT_THROW(AnalyticsService(
                   {.graph = {.facet = GraphFacet::kIp, .window_minutes = 60},
                    .training_windows = 0},
                   {}, noop),
               ContractViolation);
  EXPECT_THROW(AnalyticsService(
                   {.graph = {.facet = GraphFacet::kIp, .window_minutes = 60}},
                   {}, nullptr),
               ContractViolation);
}

}  // namespace
}  // namespace ccg

#include "ccg/summarize/edge_anomaly.hpp"

#include <gtest/gtest.h>

#include "ccg/common/expect.hpp"
#include "ccg/common/rng.hpp"

namespace ccg {
namespace {

/// Two stable edges with mild jitter; volumes overridable per call.
CommGraph window(std::uint64_t ab_bytes, std::uint64_t ac_bytes,
                 std::uint64_t extra_edge_bytes = 0) {
  CommGraph g(TimeWindow::hour(0));
  const NodeId a = g.add_node(NodeKey::for_ip(IpAddr(1u)));
  const NodeId b = g.add_node(NodeKey::for_ip(IpAddr(2u)));
  const NodeId c = g.add_node(NodeKey::for_ip(IpAddr(3u)));
  if (ab_bytes > 0) g.add_edge_volume(a, b, ab_bytes, 0, 1, 0, 1, 1);
  if (ac_bytes > 0) g.add_edge_volume(a, c, ac_bytes, 0, 1, 0, 1, 1);
  if (extra_edge_bytes > 0) {
    const NodeId d = g.add_node(NodeKey::for_ip(IpAddr(4u)));
    g.add_edge_volume(b, d, extra_edge_bytes, 0, 1, 0, 1, 1);
  }
  return g;
}

TEST(EwmaEdgeDetector, FirstWindowTrainsSilently) {
  EwmaEdgeDetector detector;
  EXPECT_TRUE(detector.observe(window(1'000'000, 500'000)).empty());
  EXPECT_EQ(detector.tracked_edges(), 2u);
  EXPECT_EQ(detector.windows_observed(), 1u);
}

TEST(EwmaEdgeDetector, SteadyTrafficWithJitterStaysQuiet) {
  EwmaEdgeDetector detector;
  Rng rng(3);
  detector.observe(window(1'000'000, 500'000));
  for (int w = 0; w < 20; ++w) {
    const auto jitter = [&](std::uint64_t base) {
      return static_cast<std::uint64_t>(
          static_cast<double>(base) * (1.0 + rng.normal(0.0, 0.03)));
    };
    const auto alerts = detector.observe(window(jitter(1'000'000), jitter(500'000)));
    EXPECT_TRUE(alerts.empty()) << "window " << w << ": "
                                << alerts.front().to_string();
  }
}

TEST(EwmaEdgeDetector, LocalizesVolumeShiftToTheRightEdge) {
  EwmaEdgeDetector detector;
  for (int w = 0; w < 5; ++w) detector.observe(window(1'000'000, 500'000));
  // a<->c jumps 20x; a<->b stays flat.
  const auto alerts = detector.observe(window(1'000'000, 10'000'000));
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].a.ip, IpAddr(1u));
  EXPECT_EQ(alerts[0].b.ip, IpAddr(3u));
  EXPECT_FALSE(alerts[0].new_edge);
  EXPECT_GT(alerts[0].deviation_sigma, 4.0);
  EXPECT_NEAR(alerts[0].expected_bytes, 500'000, 50'000);
  EXPECT_NE(alerts[0].to_string().find("SHIFT"), std::string::npos);
}

TEST(EwmaEdgeDetector, FlagsHeavyNewEdgeAndRanksItFirst) {
  EwmaEdgeDetector detector;
  for (int w = 0; w < 3; ++w) detector.observe(window(1'000'000, 500'000));
  const auto alerts =
      detector.observe(window(1'000'000, 6'000'000, /*extra=*/2'000'000));
  ASSERT_GE(alerts.size(), 2u);
  EXPECT_TRUE(alerts[0].new_edge);  // new edges rank first
  EXPECT_EQ(alerts[0].observed_bytes, 2'000'000u);
  EXPECT_NE(alerts[0].to_string().find("NEW"), std::string::npos);
}

TEST(EwmaEdgeDetector, NewNodeEdgesAreTaggedAndSuppressible) {
  // Known-known new edges keep alerting; edges to a brand-new node carry
  // the tag (and vanish entirely under suppress_new_node_edges).
  EwmaEdgeDetector tagging;
  tagging.observe(window(1'000'000, 500'000));
  // window(..., extra) adds node 4 and edge b<->d: d is new.
  auto alerts = tagging.observe(window(1'000'000, 500'000, 2'000'000));
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_TRUE(alerts[0].new_edge);
  EXPECT_TRUE(alerts[0].involves_new_node);
  EXPECT_NE(alerts[0].to_string().find("[new node]"), std::string::npos);
  // Node 4 is now known: a NEW edge to it later is known-known... build one
  // by re-adding the same extra edge after a vanish cycle is convoluted;
  // instead verify suppression drops the new-node report entirely.
  EwmaEdgeDetector suppressing({.suppress_new_node_edges = true});
  suppressing.observe(window(1'000'000, 500'000));
  EXPECT_TRUE(suppressing.observe(window(1'000'000, 500'000, 2'000'000)).empty());

  // A new edge between two already-known nodes still alerts under
  // suppression: wire a fresh a<->? pair... nodes 1,2,3 known; add edge
  // 2<->3 which never existed.
  CommGraph g(TimeWindow::hour(0));
  const NodeId a = g.add_node(NodeKey::for_ip(IpAddr(1u)));
  const NodeId b = g.add_node(NodeKey::for_ip(IpAddr(2u)));
  const NodeId c = g.add_node(NodeKey::for_ip(IpAddr(3u)));
  g.add_edge_volume(a, b, 1'000'000, 0, 1, 0, 1, 1);
  g.add_edge_volume(a, c, 500'000, 0, 1, 0, 1, 1);
  g.add_edge_volume(b, c, 3'000'000, 0, 1, 0, 1, 1);  // lateral-movement shape
  const auto lateral = suppressing.observe(g);
  // Expect the NEW b<->c alert (known-known); the b<->d edge from the
  // previous window also reports GONE, which is fine.
  std::size_t new_alerts = 0;
  for (const auto& alert : lateral) {
    if (!alert.new_edge) {
      EXPECT_TRUE(alert.vanished);
      continue;
    }
    ++new_alerts;
    EXPECT_FALSE(alert.involves_new_node);
    EXPECT_EQ(alert.a.ip, IpAddr(2u));
    EXPECT_EQ(alert.b.ip, IpAddr(3u));
  }
  EXPECT_EQ(new_alerts, 1u);
}

TEST(EwmaEdgeDetector, TinyNewEdgesIgnored) {
  EwmaEdgeDetector detector({.min_bytes = 100'000});
  detector.observe(window(1'000'000, 500'000));
  const auto alerts = detector.observe(window(1'000'000, 500'000, /*extra=*/500));
  EXPECT_TRUE(alerts.empty());
}

TEST(EwmaEdgeDetector, VanishedEdgeAlertsOnceThenDecays) {
  EwmaEdgeDetector detector;
  for (int w = 0; w < 5; ++w) detector.observe(window(1'000'000, 500'000));
  const auto alerts = detector.observe(window(1'000'000, 0));
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_TRUE(alerts[0].vanished);
  EXPECT_NE(alerts[0].to_string().find("GONE"), std::string::npos);
  // Baseline decays: a few windows later the silence is the new normal.
  std::size_t later_alerts = 0;
  for (int w = 0; w < 10; ++w) {
    later_alerts += detector.observe(window(1'000'000, 0)).size();
  }
  EXPECT_LE(later_alerts, 2u);
}

TEST(EwmaEdgeDetector, AdaptsToGradualGrowth) {
  EwmaEdgeDetector detector;
  double volume = 1'000'000;
  detector.observe(window(static_cast<std::uint64_t>(volume), 500'000));
  std::size_t alerts = 0;
  for (int w = 0; w < 30; ++w) {
    volume *= 1.05;  // 5% per window: inside the relative-sigma floor band
    alerts += detector
                  .observe(window(static_cast<std::uint64_t>(volume), 500'000))
                  .size();
  }
  EXPECT_EQ(alerts, 0u) << "gradual drift must be absorbed, not alerted";
}

TEST(EwmaEdgeDetector, ValidatesOptions) {
  EXPECT_THROW(EwmaEdgeDetector({.alpha = 0.0}), ContractViolation);
  EXPECT_THROW(EwmaEdgeDetector({.alpha = 1.5}), ContractViolation);
  EXPECT_THROW(EwmaEdgeDetector({.k_sigma = 0.0}), ContractViolation);
}

}  // namespace
}  // namespace ccg

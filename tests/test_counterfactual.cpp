#include "ccg/analytics/counterfactual.hpp"

#include <gtest/gtest.h>

#include "ccg/common/expect.hpp"

namespace ccg {
namespace {

ConnectionSummary flow_minute(std::int64_t minute, std::uint16_t lport,
                              std::uint64_t bytes) {
  return ConnectionSummary{
      .time = MinuteBucket(minute),
      .flow = FlowKey{.local_ip = IpAddr(0x0A000001), .local_port = lport,
                      .remote_ip = IpAddr(0x0A000002), .remote_port = 443,
                      .protocol = Protocol::kTcp},
      .counters = TrafficCounters{.packets_sent = 1, .packets_rcvd = 1,
                                  .bytes_sent = bytes, .bytes_rcvd = 0}};
}

TEST(FlowDistributions, AggregatesMultiMinuteFlows) {
  FlowDistributions dist;
  // One flow active for 3 consecutive minutes.
  dist.observe(flow_minute(0, 40000, 1000));
  dist.observe(flow_minute(1, 40000, 2000));
  dist.observe(flow_minute(2, 40000, 4000));
  dist.finalize();

  EXPECT_EQ(dist.flows_observed(), 1u);
  EXPECT_EQ(dist.flow_size_histogram().total(), 1u);
  // 7000 bytes -> bucket 12 (4096..8191).
  EXPECT_EQ(dist.flow_size_histogram().bucket_count(12), 1u);
  // Duration 3 minutes -> bucket 1 (2..3).
  EXPECT_EQ(dist.flow_duration_histogram().bucket_count(1), 1u);
}

TEST(FlowDistributions, IdleGapSplitsFlows) {
  FlowDistributions dist;
  dist.observe(flow_minute(0, 40000, 1000));
  dist.observe(flow_minute(10, 40000, 500));  // long gap: a new connection
  dist.finalize();
  EXPECT_EQ(dist.flows_observed(), 2u);
  EXPECT_EQ(dist.flow_size_histogram().total(), 2u);
}

TEST(FlowDistributions, InterarrivalsPerIpPair) {
  FlowDistributions dist;
  dist.observe(flow_minute(0, 40000, 100));
  dist.observe(flow_minute(4, 41000, 100));   // new flow, same pair, gap 4
  dist.observe(flow_minute(12, 42000, 100));  // gap 8
  dist.finalize();
  EXPECT_EQ(dist.interarrival_histogram().total(), 2u);
  EXPECT_EQ(dist.interarrival_histogram().bucket_count(2), 1u);  // 4..7
  EXPECT_EQ(dist.interarrival_histogram().bucket_count(3), 1u);  // 8..15
}

TEST(FlowDistributions, QuantilesTrackSizes) {
  FlowDistributions dist;
  for (std::uint16_t i = 0; i < 100; ++i) {
    dist.observe(flow_minute(0, static_cast<std::uint16_t>(40000 + i),
                             (i + 1) * 100));
  }
  dist.finalize();
  EXPECT_EQ(dist.flows_observed(), 100u);
  EXPECT_NEAR(dist.flow_size_quantiles().quantile(0.5), 5050.0, 100.0);
}

CommGraph weighted_graph() {
  CommGraph g;
  const NodeId hot = g.add_node(NodeKey::for_ip(IpAddr(1u)));
  g.set_monitored(hot, true);
  const NodeId warm = g.add_node(NodeKey::for_ip(IpAddr(2u)));
  g.set_monitored(warm, true);
  const NodeId cold = g.add_node(NodeKey::for_ip(IpAddr(3u)));
  g.set_monitored(cold, true);
  const NodeId ext = g.add_node(NodeKey::for_ip(IpAddr(0x64000001)));
  g.add_edge_volume(hot, warm, 8'000'000, 0, 100, 0, 10, 10);
  g.add_edge_volume(hot, cold, 1'000'000, 0, 10, 0, 5, 5);
  g.add_edge_volume(hot, ext, 1'000'000, 0, 10, 0, 5, 5);
  return g;
}

TEST(NodeTrafficCcdf, MonitoredFilterAndShape) {
  const CommGraph g = weighted_graph();
  const auto all = node_traffic_ccdf(g);
  const auto mon = node_traffic_ccdf(g, /*monitored_only=*/true);
  EXPECT_EQ(all.size(), g.node_count() + 1);
  EXPECT_EQ(mon.size(), 4u);  // 3 monitored + origin point
  // CCDF starts at 1 and is non-increasing.
  EXPECT_DOUBLE_EQ(all[0].ccdf, 1.0);
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(all[i].ccdf, all[i - 1].ccdf + 1e-12);
  }
}

TEST(CapacityHotspots, OrdersByBytesWithCumulativeShare) {
  const CommGraph g = weighted_graph();
  const auto hotspots = capacity_hotspots(g, 2);
  ASSERT_EQ(hotspots.size(), 2u);
  EXPECT_EQ(hotspots[0].node.ip, IpAddr(1u));  // the hot node
  EXPECT_GT(hotspots[0].share, hotspots[1].share);
  EXPECT_NEAR(hotspots[0].cumulative + 0.0, hotspots[0].share, 1e-12);
  EXPECT_GT(hotspots[1].cumulative, hotspots[1].share);
  EXPECT_LE(hotspots[0].cumulative, 1.0 + 1e-12);
}

TEST(ProximityGroups, GroupsHeavyMutualTalkers) {
  CommGraph g;
  // A hot pair, a second pair, and an external peer that must be excluded.
  std::vector<NodeId> nodes;
  for (std::uint32_t i = 0; i < 4; ++i) {
    const NodeId n = g.add_node(NodeKey::for_ip(IpAddr(10 + i)));
    g.set_monitored(n, true);
    nodes.push_back(n);
  }
  const NodeId ext = g.add_node(NodeKey::for_ip(IpAddr(0x64000001)));
  g.add_edge_volume(nodes[0], nodes[1], 50'000'000, 0, 100, 0, 10, 10);
  g.add_edge_volume(nodes[2], nodes[3], 20'000'000, 0, 100, 0, 10, 10);
  g.add_edge_volume(nodes[0], ext, 90'000'000, 0, 100, 0, 10, 10);

  const auto groups = proximity_groups(g, 4, 4);
  ASSERT_GE(groups.size(), 2u);
  EXPECT_EQ(groups[0].members.size(), 2u);
  // External node never appears.
  for (const auto& group : groups) {
    for (const auto& member : group.members) {
      EXPECT_NE(member.ip, IpAddr(0x64000001));
    }
  }
  EXPECT_GT(groups[0].internal_bytes, groups[1].internal_bytes);
}

TEST(ProximityGroups, GrowsCliquesBeyondSeedPair) {
  CommGraph g;
  std::vector<NodeId> clique;
  for (std::uint32_t i = 0; i < 5; ++i) {
    const NodeId n = g.add_node(NodeKey::for_ip(IpAddr(10 + i)));
    g.set_monitored(n, true);
    clique.push_back(n);
  }
  for (std::size_t i = 0; i < clique.size(); ++i) {
    for (std::size_t j = i + 1; j < clique.size(); ++j) {
      g.add_edge_volume(clique[i], clique[j], 10'000'000, 0, 10, 0, 1, 1);
    }
  }
  const auto groups = proximity_groups(g, 2, 8);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].members.size(), 5u);
  EXPECT_NEAR(groups[0].share_of_total, 1.0, 1e-12);
}

TEST(ProximityGroups, EmptyGraph) {
  EXPECT_TRUE(proximity_groups(CommGraph{}).empty());
}

TEST(PlacementSavings, ExtrapolatesWindowToMonth) {
  CommGraph g(TimeWindow::hour(0));  // 60-minute window
  const NodeId a = g.add_node(NodeKey::for_ip(IpAddr(1u)));
  const NodeId b = g.add_node(NodeKey::for_ip(IpAddr(2u)));
  g.set_monitored(a, true);
  g.set_monitored(b, true);
  g.add_edge_volume(a, b, 10'000'000'000ull, 0, 1, 0, 1, 1);  // 10 GB/hour

  const auto groups = proximity_groups(g, 2, 4);
  ASSERT_EQ(groups.size(), 1u);
  const auto savings = placement_savings(g, groups, /*dollars_per_gb=*/0.01);
  EXPECT_EQ(savings.colocated_bytes_per_window, 10'000'000'000ull);
  EXPECT_DOUBLE_EQ(savings.share_of_total, 1.0);
  // 10 GB/h * 720 h * $0.01/GB = $72/month.
  EXPECT_NEAR(savings.monthly_dollars_saved, 72.0, 1e-6);
}

TEST(PlacementSavings, NoGroupsNoSavings) {
  CommGraph g(TimeWindow::hour(0));
  const auto savings = placement_savings(g, {});
  EXPECT_EQ(savings.colocated_bytes_per_window, 0u);
  EXPECT_EQ(savings.monthly_dollars_saved, 0.0);
  EXPECT_THROW(placement_savings(g, {}, -1.0), ContractViolation);
}

}  // namespace
}  // namespace ccg

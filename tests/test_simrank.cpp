#include "ccg/segmentation/simrank.hpp"

#include <gtest/gtest.h>

#include "ccg/common/expect.hpp"

namespace ccg {
namespace {

NodeId ip_node(CommGraph& g, std::uint32_t ip) {
  return g.add_node(NodeKey::for_ip(IpAddr(ip)));
}

void edge(CommGraph& g, NodeId a, NodeId b, std::uint64_t bytes = 1000) {
  g.add_edge_volume(a, b, bytes, bytes, 1, 1, 1, 1);
}

TEST(SimRank, SelfSimilarityIsOne) {
  CommGraph g;
  const NodeId a = ip_node(g, 1);
  const NodeId b = ip_node(g, 2);
  edge(g, a, b);
  const auto s = simrank_scores(g);
  EXPECT_DOUBLE_EQ(s[a * 2 + a], 1.0);
  EXPECT_DOUBLE_EQ(s[b * 2 + b], 1.0);
}

TEST(SimRank, SymmetricAndBounded) {
  CommGraph g;
  const NodeId a = ip_node(g, 1), b = ip_node(g, 2), c = ip_node(g, 3),
               d = ip_node(g, 4);
  edge(g, a, c);
  edge(g, b, c);
  edge(g, b, d);
  const std::size_t n = g.node_count();
  const auto s = simrank_scores(g);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_DOUBLE_EQ(s[i * n + j], s[j * n + i]);
      EXPECT_GE(s[i * n + j], 0.0);
      EXPECT_LE(s[i * n + j], 1.0 + 1e-12);
    }
  }
}

TEST(SimRank, SharedNeighborFirstIteration) {
  // a and b both (only) talk to c: after one iteration s(a,b) = C * s(c,c) = C.
  CommGraph g;
  const NodeId a = ip_node(g, 1), b = ip_node(g, 2), c = ip_node(g, 3);
  edge(g, a, c);
  edge(g, b, c);
  const auto s = simrank_scores(g, {.decay = 0.8, .iterations = 1});
  EXPECT_NEAR(s[a * 3 + b], 0.8, 1e-12);
  // a and c share no structural equivalence at iteration 1 beyond a-b link:
  // s(a,c) = C/ (1*2) * (s(c,a) + s(c,b)) with s from iteration 0 = 0.
  EXPECT_NEAR(s[a * 3 + c], 0.0, 1e-12);
}

TEST(SimRank, RecursivePropagationBeyondOneHop) {
  // Two parallel chains: a1-m1-z, a2-m2-z. a1 and a2 share no neighbor
  // (m1 != m2) so Jaccard(a1,a2) = 0, but SimRank finds them similar
  // because m1 and m2 are similar (both talk to z).
  CommGraph g;
  const NodeId a1 = ip_node(g, 1), a2 = ip_node(g, 2);
  const NodeId m1 = ip_node(g, 11), m2 = ip_node(g, 12);
  const NodeId z = ip_node(g, 99);
  edge(g, a1, m1);
  edge(g, a2, m2);
  edge(g, m1, z);
  edge(g, m2, z);
  const std::size_t n = g.node_count();
  const auto s = simrank_scores(g, {.decay = 0.8, .iterations = 6});
  EXPECT_GT(s[a1 * n + a2], 0.2);
}

TEST(SimRank, IsolatedNodesScoreZero) {
  CommGraph g;
  const NodeId a = ip_node(g, 1), b = ip_node(g, 2), c = ip_node(g, 3);
  edge(g, a, b);
  (void)c;  // no edges
  const auto s = simrank_scores(g);
  EXPECT_DOUBLE_EQ(s[a * 3 + c], 0.0);
  EXPECT_DOUBLE_EQ(s[c * 3 + c], 1.0);
}

TEST(SimRankPlusPlus, EvidenceDampsSingleSharedNeighbor) {
  // Pair (a,b): 1 shared neighbor. Pair (c,d): 3 shared neighbors.
  CommGraph g;
  const NodeId a = ip_node(g, 1), b = ip_node(g, 2);
  const NodeId h = ip_node(g, 10);
  edge(g, a, h);
  edge(g, b, h);
  const NodeId c = ip_node(g, 3), d = ip_node(g, 4);
  for (std::uint32_t i = 0; i < 3; ++i) {
    const NodeId shared = ip_node(g, 20 + i);
    edge(g, c, shared);
    edge(g, d, shared);
  }
  const std::size_t n = g.node_count();
  const auto plain = simrank_scores(g, {.plus_plus = false});
  const auto plus = simrank_scores(g, {.plus_plus = true});
  // Evidence: 1 - 2^-1 = 0.5 for one shared neighbor, 1 - 2^-3 = 0.875 for 3.
  // The many-shared pair keeps relatively more of its score.
  const double damp_ab = plus[a * n + b] / std::max(1e-12, plain[a * n + b]);
  const double damp_cd = plus[c * n + d] / std::max(1e-12, plain[c * n + d]);
  EXPECT_LT(damp_ab, damp_cd);
}

TEST(SimRankPlusPlus, WeightsInfluenceScores) {
  // c's traffic to its shared neighbors is skewed; SimRank++ uses weighted
  // transitions, so scores differ from plain SimRank.
  CommGraph g;
  const NodeId a = ip_node(g, 1), b = ip_node(g, 2);
  const NodeId s1 = ip_node(g, 11), s2 = ip_node(g, 12);
  edge(g, a, s1, 1'000'000);
  edge(g, a, s2, 100);
  edge(g, b, s1, 100);
  edge(g, b, s2, 1'000'000);
  const std::size_t n = g.node_count();
  const auto plain = simrank_scores(g, {.plus_plus = false});
  const auto plus = simrank_scores(g, {.plus_plus = true});
  EXPECT_NE(plain[a * n + b], plus[a * n + b]);
}

TEST(SimRankClique, BuildsFromScores) {
  CommGraph g;
  const NodeId a = ip_node(g, 1), b = ip_node(g, 2), c = ip_node(g, 3);
  edge(g, a, c);
  edge(g, b, c);
  const auto clique = simrank_clique(g, {.min_score = 0.1});
  double w_ab = 0.0;
  for (const auto& [peer, w] : clique.neighbors(a)) {
    if (peer == b) w_ab = w;
  }
  EXPECT_GT(w_ab, 0.5);
}

TEST(SimRank, GuardsAgainstHugeGraphs) {
  CommGraph g;
  for (std::uint32_t i = 0; i < 3001; ++i) ip_node(g, i + 1);
  EXPECT_THROW(simrank_scores(g), ContractViolation);
}

TEST(SimRank, OptionValidation) {
  CommGraph g;
  ip_node(g, 1);
  EXPECT_THROW(simrank_scores(g, {.decay = 0.0}), ContractViolation);
  EXPECT_THROW(simrank_scores(g, {.decay = 1.0}), ContractViolation);
  EXPECT_THROW(simrank_scores(g, {.iterations = 0}), ContractViolation);
}

}  // namespace
}  // namespace ccg

#include "ccg/telemetry/collector.hpp"

#include <gtest/gtest.h>

#include "ccg/common/expect.hpp"

namespace ccg {
namespace {

class RecordingSink : public TelemetrySink {
 public:
  void on_batch(MinuteBucket time, const std::vector<ConnectionSummary>& batch) override {
    times.push_back(time);
    records.insert(records.end(), batch.begin(), batch.end());
  }
  std::vector<MinuteBucket> times;
  std::vector<ConnectionSummary> records;
};

FlowKey flow(IpAddr local, std::uint16_t lport, IpAddr remote, std::uint16_t rport) {
  return FlowKey{.local_ip = local, .local_port = lport,
                 .remote_ip = remote, .remote_port = rport,
                 .protocol = Protocol::kTcp};
}

TEST(TelemetryHub, RoutesByLocalIpAndIgnoresUnknownHosts) {
  TelemetryHub hub(ProviderProfile::azure(), 1);
  const IpAddr vm1(0x0A000001), vm2(0x0A000002), internet(0x08080808);
  hub.add_host(vm1);
  hub.add_host(vm2);
  EXPECT_EQ(hub.host_count(), 2u);
  EXPECT_TRUE(hub.has_host(vm1));
  EXPECT_FALSE(hub.has_host(internet));

  const TrafficCounters c{.packets_sent = 1, .packets_rcvd = 1,
                          .bytes_sent = 100, .bytes_rcvd = 200};
  hub.observe(flow(vm1, 40000, internet, 443), c, MinuteBucket(0));
  hub.observe(flow(internet, 443, vm1, 40000), c, MinuteBucket(0));  // no NIC: dropped

  const auto batch = hub.end_interval(MinuteBucket(0));
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].flow.local_ip, vm1);
}

TEST(TelemetryHub, AddHostIsIdempotent) {
  TelemetryHub hub(ProviderProfile::azure(), 1);
  const IpAddr vm(0x0A000001);
  hub.add_host(vm);
  const TrafficCounters c{.bytes_sent = 100};
  hub.observe(flow(vm, 40000, IpAddr(0x0A000002), 443), c, MinuteBucket(0));
  hub.add_host(vm);  // must not wipe pending flow state
  const auto batch = hub.end_interval(MinuteBucket(0));
  EXPECT_EQ(batch.size(), 1u);
}

TEST(TelemetryHub, BothEndpointsReportIntraSubscriptionFlows) {
  TelemetryHub hub(ProviderProfile::azure(), 1);
  const IpAddr a(0x0A000001), b(0x0A000002);
  hub.add_host(a);
  hub.add_host(b);

  hub.observe(flow(a, 40000, b, 443),
              TrafficCounters{.bytes_sent = 500, .bytes_rcvd = 1000}, MinuteBucket(0));
  hub.observe(flow(b, 443, a, 40000),
              TrafficCounters{.bytes_sent = 1000, .bytes_rcvd = 500}, MinuteBucket(0));

  const auto batch = hub.end_interval(MinuteBucket(0));
  ASSERT_EQ(batch.size(), 2u);
  // Deterministically ordered by flow key.
  EXPECT_EQ(batch[0].flow.local_ip, a);
  EXPECT_EQ(batch[1].flow.local_ip, b);
  EXPECT_EQ(batch[0].counters.bytes_sent, batch[1].counters.bytes_rcvd);
}

TEST(TelemetryHub, LedgerAccumulatesAcrossIntervals) {
  TelemetryHub hub(ProviderProfile::azure(), 1);
  const IpAddr vm(0x0A000001);
  hub.add_host(vm);
  const TrafficCounters c{.bytes_sent = 100};
  for (int minute = 0; minute < 3; ++minute) {
    hub.observe(flow(vm, 40000, IpAddr(0x0A000002), 443), c, MinuteBucket(minute));
    hub.end_interval(MinuteBucket(minute));
  }
  const auto& ledger = hub.ledger();
  EXPECT_EQ(ledger.records, 3u);
  EXPECT_EQ(ledger.intervals, 3u);
  EXPECT_EQ(ledger.wire_bytes, 3 * ConnectionSummary::kWireBytes);
  EXPECT_NEAR(ledger.records_per_minute(), 1.0, 1e-9);
  EXPECT_GT(ledger.cost_dollars, 0.0);
}

TEST(TelemetryHub, ForwardsToSink) {
  TelemetryHub hub(ProviderProfile::azure(), 1);
  RecordingSink sink;
  hub.set_sink(&sink);
  const IpAddr vm(0x0A000001);
  hub.add_host(vm);
  hub.observe(flow(vm, 40000, IpAddr(0x0A000002), 443),
              TrafficCounters{.bytes_sent = 100}, MinuteBucket(5));
  hub.end_interval(MinuteBucket(5));
  ASSERT_EQ(sink.times.size(), 1u);
  EXPECT_EQ(sink.times[0], MinuteBucket(5));
  EXPECT_EQ(sink.records.size(), 1u);
}

TEST(HostAgent, RejectsForeignFlows) {
  HostAgent agent(IpAddr(0x0A000001), 16, ProviderProfile::azure(), 1);
  EXPECT_THROW(agent.observe(flow(IpAddr(0x0A000099), 1, IpAddr(0x0A000001), 2),
                             TrafficCounters{}, MinuteBucket(0)),
               ContractViolation);
}

TEST(TelemetryHub, TracksFlowTableMemory) {
  TelemetryHub hub(ProviderProfile::azure(), 1);
  const IpAddr vm(0x0A000001);
  hub.add_host(vm);
  EXPECT_EQ(hub.total_flow_table_bytes(), 0u);
  hub.observe(flow(vm, 40000, IpAddr(0x0A000002), 443),
              TrafficCounters{.bytes_sent = 1}, MinuteBucket(0));
  EXPECT_EQ(hub.total_flow_table_bytes(), FlowTable::kBytesPerEntry);
}

}  // namespace
}  // namespace ccg

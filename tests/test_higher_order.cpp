#include "ccg/policy/higher_order.hpp"

#include <gtest/gtest.h>

namespace ccg {
namespace {

SegmentMap web_api_segments(std::size_t web_count = 6) {
  SegmentMap map;
  for (std::uint32_t i = 0; i < web_count; ++i) {
    map.assign(IpAddr(0x0A000001 + i), 0);  // web
  }
  map.assign(IpAddr(0x0A000100), 1);  // api
  map.assign(IpAddr(0x0A000200), 2);  // db
  return map;
}

Violation violation(std::uint32_t client_ip, std::uint32_t client_seg,
                    std::uint32_t server_seg, std::uint16_t port) {
  return Violation{.time = MinuteBucket(0),
                   .client_ip = IpAddr(client_ip),
                   .server_ip = IpAddr(0x0A000200),
                   .server_port = port,
                   .client_segment = client_seg,
                   .server_segment = server_seg};
}

TEST(SimilarityPolicy, SuppressesCoordinatedSegmentWideChange) {
  const SegmentMap segments = web_api_segments(6);
  // All six web VMs start talking to the db on 5432 — a code change.
  std::vector<Violation> violations;
  for (std::uint32_t i = 0; i < 6; ++i) {
    violations.push_back(violation(0x0A000001 + i, 0, 2, 5432));
  }
  const auto classified = apply_similarity_policy(violations, segments);
  ASSERT_EQ(classified.size(), 6u);
  for (const auto& cv : classified) {
    EXPECT_TRUE(cv.suppressed);
    EXPECT_DOUBLE_EQ(cv.segment_coverage, 1.0);
  }
}

TEST(SimilarityPolicy, LoneWolfStaysAlert) {
  const SegmentMap segments = web_api_segments(6);
  // One breached web VM probes the db: 1 of 6 members.
  const auto classified =
      apply_similarity_policy({violation(0x0A000001, 0, 2, 5432)}, segments);
  ASSERT_EQ(classified.size(), 1u);
  EXPECT_FALSE(classified[0].suppressed);
  EXPECT_NEAR(classified[0].segment_coverage, 1.0 / 6.0, 1e-12);
}

TEST(SimilarityPolicy, ThresholdIsConfigurable) {
  const SegmentMap segments = web_api_segments(6);
  std::vector<Violation> violations;
  for (std::uint32_t i = 0; i < 3; ++i) {
    violations.push_back(violation(0x0A000001 + i, 0, 2, 5432));
  }
  // 3/6 = 0.5 coverage.
  const auto strict = apply_similarity_policy(violations, segments,
                                              {.segment_fraction = 0.8});
  EXPECT_FALSE(strict[0].suppressed);
  const auto loose = apply_similarity_policy(violations, segments,
                                             {.segment_fraction = 0.5});
  EXPECT_TRUE(loose[0].suppressed);
}

TEST(SimilarityPolicy, DifferentBehavioursCountSeparately) {
  const SegmentMap segments = web_api_segments(4);
  // Two web VMs touch the db on 5432, two on 22: neither behaviour is
  // segment-wide even though 4 members violated something.
  std::vector<Violation> violations{
      violation(0x0A000001, 0, 2, 5432), violation(0x0A000002, 0, 2, 5432),
      violation(0x0A000003, 0, 2, 22), violation(0x0A000004, 0, 2, 22)};
  const auto classified =
      apply_similarity_policy(violations, segments, {.segment_fraction = 0.75});
  for (const auto& cv : classified) {
    EXPECT_FALSE(cv.suppressed);
    EXPECT_DOUBLE_EQ(cv.segment_coverage, 0.5);
  }
}

TEST(SimilarityPolicy, ExternalClientsNeverSuppressed) {
  const SegmentMap segments = web_api_segments(2);
  const auto classified = apply_similarity_policy(
      {violation(0x64000001, kExternalSegment, 0, 443)}, segments);
  EXPECT_FALSE(classified[0].suppressed);
}

TEST(SimilarityPolicy, MinMembersGuardsTinySegments) {
  SegmentMap map;
  map.assign(IpAddr(0x0A000001), 0);  // singleton segment
  map.assign(IpAddr(0x0A000100), 1);
  const auto classified = apply_similarity_policy(
      {violation(0x0A000001, 0, 1, 443)}, map, {.min_members = 2});
  // 1/1 = 100% coverage, but a single member is no evidence of coordination.
  EXPECT_FALSE(classified[0].suppressed);
}

// --- Proportionality ---------------------------------------------------------

ConnectionSummary seg_flow(IpAddr client, IpAddr server, std::uint16_t port,
                           std::uint64_t bytes) {
  // Client-side record only (external-ish view keeps volume counting simple).
  return ConnectionSummary{
      .time = MinuteBucket(0),
      .flow = FlowKey{.local_ip = client, .local_port = 45000,
                      .remote_ip = server, .remote_port = port,
                      .protocol = Protocol::kTcp},
      .counters = TrafficCounters{.packets_sent = bytes / 1000 + 1,
                                  .packets_rcvd = 1,
                                  .bytes_sent = bytes,
                                  .bytes_rcvd = 0}};
}

TEST(SegmentVolumeMatrix, AccumulatesBySegmentPair) {
  const SegmentMap segments = web_api_segments();
  SegmentVolumeMatrix m(segments);
  m.observe(seg_flow(IpAddr(0x0A000001), IpAddr(0x0A000100), 8080, 1000));
  m.observe(seg_flow(IpAddr(0x0A000002), IpAddr(0x0A000100), 8080, 500));
  EXPECT_EQ(m.volume(0, 1), 1500u);
  EXPECT_EQ(m.volume(1, 0), 0u);
}

TEST(SegmentVolumeMatrix, CountsIntraSubscriptionFlowsOnce) {
  const SegmentMap segments = web_api_segments();
  SegmentVolumeMatrix m(segments);
  const IpAddr web(0x0A000001), api(0x0A000100);
  // Both sides of one conversation.
  m.observe(ConnectionSummary{
      .time = MinuteBucket(0),
      .flow = {.local_ip = web, .local_port = 45000, .remote_ip = api,
               .remote_port = 8080, .protocol = Protocol::kTcp},
      .counters = {.packets_sent = 1, .packets_rcvd = 1, .bytes_sent = 700,
                   .bytes_rcvd = 300}});
  m.observe(ConnectionSummary{
      .time = MinuteBucket(0),
      .flow = {.local_ip = api, .local_port = 8080, .remote_ip = web,
               .remote_port = 45000, .protocol = Protocol::kTcp},
      .counters = {.packets_sent = 1, .packets_rcvd = 1, .bytes_sent = 300,
                   .bytes_rcvd = 700}});
  EXPECT_EQ(m.volume(0, 1), 1000u);  // once, not twice
}

struct ProportionalityFixture {
  SegmentMap segments = web_api_segments();
  SegmentVolumeMatrix baseline{segments};
  SegmentVolumeMatrix current{segments};

  ProportionalityFixture() {
    // Baseline: web->api 10MB, web->db 1MB (two outbound edges for web).
    for (int i = 0; i < 10; ++i) {
      baseline.observe(seg_flow(IpAddr(0x0A000001), IpAddr(0x0A000100), 8080, 1'000'000));
    }
    baseline.observe(seg_flow(IpAddr(0x0A000001), IpAddr(0x0A000200), 5432, 1'000'000));
  }
};

TEST(ProportionalityPolicy, FlashCrowdExplained) {
  ProportionalityFixture fx;
  // Everything from web grows 5x together: a flash crowd.
  for (int i = 0; i < 50; ++i) {
    fx.current.observe(seg_flow(IpAddr(0x0A000001), IpAddr(0x0A000100), 8080, 1'000'000));
  }
  for (int i = 0; i < 5; ++i) {
    fx.current.observe(seg_flow(IpAddr(0x0A000001), IpAddr(0x0A000200), 5432, 1'000'000));
  }
  const auto alerts = apply_proportionality_policy(fx.baseline, fx.current);
  ASSERT_FALSE(alerts.empty());
  for (const auto& a : alerts) {
    EXPECT_FALSE(a.flagged) << a.to_string();
  }
}

TEST(ProportionalityPolicy, IsolatedSurgeFlagged) {
  ProportionalityFixture fx;
  // web->api stays flat; web->db grows 30x in isolation (exfil-like).
  for (int i = 0; i < 10; ++i) {
    fx.current.observe(seg_flow(IpAddr(0x0A000001), IpAddr(0x0A000100), 8080, 1'000'000));
  }
  for (int i = 0; i < 30; ++i) {
    fx.current.observe(seg_flow(IpAddr(0x0A000001), IpAddr(0x0A000200), 5432, 1'000'000));
  }
  const auto alerts = apply_proportionality_policy(fx.baseline, fx.current);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_TRUE(alerts[0].flagged);
  EXPECT_EQ(alerts[0].client_segment, 0u);
  EXPECT_EQ(alerts[0].server_segment, 2u);
  EXPECT_NEAR(alerts[0].growth, 30.0, 1.0);
}

TEST(ProportionalityPolicy, InboundGrowthExplainsPassThroughSurge) {
  // web -> api is web's ONLY outbound edge; it grows 8x. Without the
  // inbound chain this is an isolated surge; with clients pouring 8x into
  // web, it is an explained flash crowd.
  SegmentMap segments;
  const IpAddr client(0x64000001);  // external
  const IpAddr web(0x0A000001), api(0x0A000100), audit(0x0A000200);
  segments.assign(web, 0);
  segments.assign(api, 1);
  segments.assign(audit, 2);

  SegmentVolumeMatrix baseline(segments), current(segments);
  for (int i = 0; i < 10; ++i) {
    baseline.observe(seg_flow(client, web, 443, 1'000'000));   // ext -> web
    baseline.observe(seg_flow(web, api, 8080, 1'000'000));     // web -> api
    baseline.observe(seg_flow(web, audit, 9999, 1'000'000));   // flat edge
    current.observe(seg_flow(web, audit, 9999, 1'000'000));
  }
  for (int i = 0; i < 80; ++i) {
    current.observe(seg_flow(client, web, 443, 1'000'000));
    current.observe(seg_flow(web, api, 8080, 1'000'000));
  }
  // web's outbound median is the flat audit edge (1x): only the inbound
  // surge can explain the web -> api growth.
  const auto alerts = apply_proportionality_policy(baseline, current);
  ASSERT_FALSE(alerts.empty());
  for (const auto& a : alerts) {
    if (a.client_segment == 0) {  // the web -> api surge
      EXPECT_FALSE(a.flagged) << a.to_string();
      EXPECT_NEAR(a.inbound_growth, 8.0, 0.5);
    }
  }
}

TEST(ProportionalityPolicy, NoInboundGrowthKeepsSurgeFlagged) {
  // Same topology, but clients stay flat while web -> api surges: an
  // insider pushing data, not a crowd.
  SegmentMap segments;
  const IpAddr client(0x64000001);
  const IpAddr web(0x0A000001), api(0x0A000100), audit(0x0A000200);
  segments.assign(web, 0);
  segments.assign(api, 1);
  segments.assign(audit, 2);

  SegmentVolumeMatrix baseline(segments), current(segments);
  for (int i = 0; i < 10; ++i) {
    baseline.observe(seg_flow(client, web, 443, 1'000'000));
    baseline.observe(seg_flow(web, api, 8080, 1'000'000));
    baseline.observe(seg_flow(web, audit, 9999, 1'000'000));
    current.observe(seg_flow(client, web, 443, 1'000'000));  // flat inbound
    current.observe(seg_flow(web, audit, 9999, 1'000'000));
  }
  for (int i = 0; i < 80; ++i) {
    current.observe(seg_flow(web, api, 8080, 1'000'000));
  }
  const auto alerts = apply_proportionality_policy(baseline, current);
  bool saw_flagged = false;
  for (const auto& a : alerts) {
    if (a.client_segment == 0) saw_flagged |= a.flagged;
  }
  EXPECT_TRUE(saw_flagged);
}

TEST(ProportionalityPolicy, SmallBaselinesIgnored) {
  const SegmentMap segments = web_api_segments();
  SegmentVolumeMatrix baseline(segments), current(segments);
  baseline.observe(seg_flow(IpAddr(0x0A000001), IpAddr(0x0A000100), 8080, 10));
  current.observe(seg_flow(IpAddr(0x0A000001), IpAddr(0x0A000100), 8080, 10'000));
  const auto alerts = apply_proportionality_policy(baseline, current,
                                                   {.min_baseline_bytes = 100'000});
  EXPECT_TRUE(alerts.empty());
}

TEST(ProportionalityPolicy, NoGrowthNoAlerts) {
  ProportionalityFixture fx;
  for (int i = 0; i < 10; ++i) {
    fx.current.observe(seg_flow(IpAddr(0x0A000001), IpAddr(0x0A000100), 8080, 1'000'000));
  }
  fx.current.observe(seg_flow(IpAddr(0x0A000001), IpAddr(0x0A000200), 5432, 1'000'000));
  EXPECT_TRUE(apply_proportionality_policy(fx.baseline, fx.current).empty());
}

}  // namespace
}  // namespace ccg

#include "ccg/dist/wire.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <span>
#include <vector>

#include "ccg/store/format.hpp"

namespace ccg::dist {
namespace {

Hello reference_hello() {
  Hello hello;
  hello.version = kWireVersion;
  hello.shard_id = 2;
  hello.shard_count = 4;
  hello.config = {GraphFacet::kIp, 60, 0.001, false};
  return hello;
}

// Golden bytes pin the wire format: any codec change that alters them is an
// incompatible protocol change and must bump kWireVersion. Layout:
// u8 type | varint magic("CCGD") | varint version | varint shard_id |
// varint shard_count | u8 facet | varint window_minutes |
// varint bit_cast<u64>(collapse_threshold) | u8 collapse_monitored.
TEST(WireFormat, GoldenHelloBytes) {
  const std::vector<std::uint8_t> golden = {
      0x01,                          // kHello
      0xC3, 0x86, 0x9D, 0xA2, 0x04,  // magic 0x44474343 "CCGD"
      0x02,                          // version 2 (adds kTelemetry)
      0x02,                          // shard id 2
      0x04,                          // shard count 4
      0x00,                          // facet kIp
      0x3C,                          // window 60 min
      0xFC, 0xD3, 0xC6, 0x97, 0xDD, 0xC9, 0x98, 0xA8, 0x3F,  // 0.001 bits
      0x00,                          // collapse_monitored false
  };
  EXPECT_EQ(encode_hello(reference_hello()), golden);
}

TEST(WireFormat, GoldenAckWindowAndEosBytes) {
  EXPECT_EQ(encode_hello_ack(), (std::vector<std::uint8_t>{0x02, 0x02}));

  WindowFrame frame;
  frame.shard_id = 1;
  frame.window_begin = 120;
  frame.trace_id = 0xABCDEF;
  frame.keyframe = {0xDE, 0xAD, 0xBE, 0xEF};
  const std::vector<std::uint8_t> golden_window = {
      0x03, 0x01, 0xF0, 0x01, 0xEF, 0x9B, 0xAF, 0x05,
      0x04, 0xDE, 0xAD, 0xBE, 0xEF};
  EXPECT_EQ(encode_window(frame), golden_window);

  EXPECT_EQ(encode_end_of_stream({3, 1000, 7}),
            (std::vector<std::uint8_t>{0x04, 0x03, 0xE8, 0x07, 0x07}));
}

TEST(WireFormat, HelloRoundTrip) {
  const Hello hello = reference_hello();
  const auto decoded = decode_hello(encode_hello(hello));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->version, hello.version);
  EXPECT_EQ(decoded->shard_id, hello.shard_id);
  EXPECT_EQ(decoded->shard_count, hello.shard_count);
  EXPECT_TRUE(decoded->config == hello.config);
  EXPECT_TRUE(decode_hello_ack(encode_hello_ack()));
}

TEST(WireFormat, WindowRoundTripPreservesKeyframeBytes) {
  WindowFrame frame;
  frame.shard_id = 7;
  frame.window_begin = -60;  // pre-epoch windows are legal (zigzag)
  frame.trace_id = 0x1234567890ABCDEFull;
  for (int i = 0; i < 300; ++i) {
    frame.keyframe.push_back(static_cast<std::uint8_t>(i * 13));
  }
  const auto decoded = decode_window(encode_window(frame));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->shard_id, frame.shard_id);
  EXPECT_EQ(decoded->window_begin, frame.window_begin);
  EXPECT_EQ(decoded->trace_id, frame.trace_id);
  EXPECT_EQ(decoded->keyframe, frame.keyframe);
}

TEST(WireFormat, EveryTruncationIsRejected) {
  const auto hello = encode_hello(reference_hello());
  for (std::size_t len = 0; len < hello.size(); ++len) {
    EXPECT_FALSE(decode_hello(std::span(hello).first(len)).has_value())
        << "hello truncated to " << len << " bytes decoded";
  }
  WindowFrame frame;
  frame.shard_id = 1;
  frame.window_begin = 60;
  frame.trace_id = 42;
  frame.keyframe = {1, 2, 3, 4, 5};
  const auto window = encode_window(frame);
  for (std::size_t len = 0; len < window.size(); ++len) {
    EXPECT_FALSE(decode_window(std::span(window).first(len)).has_value())
        << "window truncated to " << len << " bytes decoded";
  }
  const auto eos = encode_end_of_stream({1, 10, 2});
  for (std::size_t len = 0; len < eos.size(); ++len) {
    EXPECT_FALSE(decode_end_of_stream(std::span(eos).first(len)).has_value());
  }
}

TEST(WireFormat, TrailingGarbageIsRejected) {
  auto hello = encode_hello(reference_hello());
  hello.push_back(0x00);
  EXPECT_FALSE(decode_hello(hello).has_value());

  // A window whose length field disagrees with the actual tail — both a
  // byte short and a byte long — is a framing bug, not slack.
  WindowFrame frame;
  frame.shard_id = 1;
  frame.window_begin = 60;
  frame.trace_id = 42;
  frame.keyframe = {9, 9, 9};
  auto window = encode_window(frame);
  window.push_back(0xAA);
  EXPECT_FALSE(decode_window(window).has_value());

  auto eos = encode_end_of_stream({1, 10, 2});
  eos.push_back(0x01);
  EXPECT_FALSE(decode_end_of_stream(eos).has_value());
}

TEST(WireFormat, BadMagicAndBadTypeRejected) {
  auto hello = encode_hello(reference_hello());
  hello[1] ^= 0x01;  // corrupt the magic
  EXPECT_FALSE(decode_hello(hello).has_value());

  EXPECT_FALSE(peek_type({}).has_value());
  const std::vector<std::uint8_t> unknown = {0x7F, 0x00};
  EXPECT_FALSE(peek_type(unknown).has_value());
  EXPECT_FALSE(decode_hello(unknown).has_value());
  EXPECT_FALSE(decode_window(unknown).has_value());
  EXPECT_FALSE(decode_end_of_stream(unknown).has_value());
  EXPECT_FALSE(decode_hello_ack(unknown));
}

TEST(WireFormat, InvalidConfigRejected) {
  Hello hello = reference_hello();
  hello.config.collapse_threshold = 1.5;  // out of [0, 1)
  EXPECT_FALSE(decode_hello(encode_hello(hello)).has_value());

  hello = reference_hello();
  hello.config.collapse_threshold =
      std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(decode_hello(encode_hello(hello)).has_value());

  hello = reference_hello();
  hello.config.window_minutes = 0;
  EXPECT_FALSE(decode_hello(encode_hello(hello)).has_value());

  // shard_id >= shard_count is nonsense regardless of config.
  hello = reference_hello();
  hello.shard_id = 4;
  hello.shard_count = 4;
  EXPECT_FALSE(decode_hello(encode_hello(hello)).has_value());
}

TEST(WireFormat, ZeroTraceIdRejected) {
  // Trace id 0 is the "no trace" sentinel; a shard must never ship it.
  WindowFrame frame;
  frame.shard_id = 1;
  frame.window_begin = 60;
  frame.trace_id = 0;
  frame.keyframe = {1};
  EXPECT_FALSE(decode_window(encode_window(frame)).has_value());
}

TelemetryFrame reference_telemetry() {
  TelemetryFrame frame;
  frame.shard_id = 3;
  frame.seq = 9;

  frame.metrics.counters.push_back({"ccg.analytics.windows", 42, {}});
  frame.metrics.counters.push_back({"ccg.net.frames_sent", 0, {}});
  frame.metrics.gauges.push_back({"ccg.dist.agg.queue_depth_hwm", 2.5, {}});
  obs::HistogramSample h;
  h.name = "ccg.analytics.window.seconds";
  h.buckets = {{0.001, 3}, {0.002, 1},
               {std::numeric_limits<double>::infinity(), 1}};
  h.count = 5;
  h.sum = 0.009;
  h.min = 0.0004;
  h.max = 0.0041;
  frame.metrics.histograms.push_back(std::move(h));

  obs::LogRecord r;
  r.level = obs::LogLevel::kWarn;
  r.ts_ns = 123456789;
  r.thread_hash = 0xDEAD;
  r.trace_id = 0xABC;
  r.message = "dist: telemetry ship failed";
  r.fields.push_back({"shard", "3"});
  r.fields.push_back({"seq", "8"});
  frame.logs.push_back(std::move(r));

  obs::TraceEvent e;
  e.name = "ccg.analytics.window";
  e.start_ns = 1000;
  e.duration_ns = 250;
  e.thread_hash = 0xBEEF;
  e.trace_id = 0xABC;
  e.span_id = 7;
  e.parent_id = 0;
  frame.spans.push_back(std::move(e));
  return frame;
}

TEST(WireTelemetry, RoundTripPreservesEverySection) {
  const TelemetryFrame frame = reference_telemetry();
  const auto encoded = encode_telemetry(frame);
  EXPECT_EQ(peek_type(encoded), MsgType::kTelemetry);
  const auto decoded = decode_telemetry(encoded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->shard_id, frame.shard_id);
  EXPECT_EQ(decoded->seq, frame.seq);

  ASSERT_EQ(decoded->metrics.counters.size(), 2u);
  EXPECT_EQ(decoded->metrics.counters[0].name, "ccg.analytics.windows");
  EXPECT_EQ(decoded->metrics.counters[0].value, 42u);
  EXPECT_EQ(decoded->metrics.counters[1].value, 0u);  // zero is legal

  ASSERT_EQ(decoded->metrics.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(decoded->metrics.gauges[0].value, 2.5);

  ASSERT_EQ(decoded->metrics.histograms.size(), 1u);
  const obs::HistogramSample& h = decoded->metrics.histograms[0];
  EXPECT_EQ(h.name, "ccg.analytics.window.seconds");
  EXPECT_EQ(h.count, 5u);
  EXPECT_DOUBLE_EQ(h.sum, 0.009);
  EXPECT_DOUBLE_EQ(h.min, 0.0004);
  EXPECT_DOUBLE_EQ(h.max, 0.0041);
  ASSERT_EQ(h.buckets.size(), 3u);
  EXPECT_EQ(h.buckets[0].second, 3u);
  EXPECT_TRUE(std::isinf(h.buckets[2].first));
  // Quantiles are not on the wire; the decoder recomputes them from the
  // shipped buckets — exactly what the receiver-side helper produces.
  EXPECT_DOUBLE_EQ(
      h.p50, obs::quantile_from_buckets(h.buckets, h.count, h.min, h.max, 0.5));
  EXPECT_GE(h.p50, h.min);
  EXPECT_LE(h.p99, h.max);

  ASSERT_EQ(decoded->logs.size(), 1u);
  EXPECT_EQ(decoded->logs[0].level, obs::LogLevel::kWarn);
  EXPECT_EQ(decoded->logs[0].message, "dist: telemetry ship failed");
  ASSERT_EQ(decoded->logs[0].fields.size(), 2u);
  EXPECT_EQ(decoded->logs[0].fields[1].value, "8");

  ASSERT_EQ(decoded->spans.size(), 1u);
  EXPECT_EQ(decoded->spans[0].name, "ccg.analytics.window");
  EXPECT_EQ(decoded->spans[0].duration_ns, 250u);
  EXPECT_EQ(decoded->spans[0].parent_id, 0u);
}

TEST(WireTelemetry, EmptySectionsRoundTrip) {
  // The shipper skips all-empty frames, but any single section may be
  // empty on the wire (e.g. a metrics-only shipment).
  TelemetryFrame frame;
  frame.shard_id = 0;
  frame.seq = 0;
  const auto decoded = decode_telemetry(encode_telemetry(frame));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->shard_id, 0u);
  EXPECT_EQ(decoded->seq, 0u);
  EXPECT_TRUE(decoded->metrics.counters.empty());
  EXPECT_TRUE(decoded->logs.empty());
  EXPECT_TRUE(decoded->spans.empty());
}

TEST(WireTelemetry, EveryTruncationIsRejected) {
  const auto encoded = encode_telemetry(reference_telemetry());
  for (std::size_t len = 0; len < encoded.size(); ++len) {
    EXPECT_FALSE(decode_telemetry(std::span(encoded).first(len)).has_value())
        << "telemetry truncated to " << len << " bytes decoded";
  }
}

TEST(WireTelemetry, TrailingGarbageIsRejected) {
  auto encoded = encode_telemetry(reference_telemetry());
  encoded.push_back(0x00);
  EXPECT_FALSE(decode_telemetry(encoded).has_value());
}

TEST(WireTelemetry, MalformedFieldsRejected) {
  // Oversized shard id: the fleet registry keys on small shard numbers.
  TelemetryFrame frame = reference_telemetry();
  frame.shard_id = 0x10000;
  EXPECT_FALSE(decode_telemetry(encode_telemetry(frame)).has_value());

  // Log level outside debug..error. The level is the second byte after
  // the counted sections; corrupt it in place instead of re-encoding.
  frame = reference_telemetry();
  auto encoded = encode_telemetry(frame);
  const auto good = decode_telemetry(encoded);
  ASSERT_TRUE(good.has_value());
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    if (encoded[i] != static_cast<std::uint8_t>(obs::LogLevel::kWarn)) continue;
    auto corrupt = encoded;
    corrupt[i] = 0x09;
    const auto decoded = decode_telemetry(corrupt);
    // Flipping a varint byte elsewhere may still decode; the byte that is
    // the level must not accept 9.
    if (decoded.has_value()) {
      EXPECT_NE(decoded->logs[0].level, static_cast<obs::LogLevel>(9));
    }
  }

  EXPECT_FALSE(decode_telemetry({}).has_value());
  const std::vector<std::uint8_t> wrong_type = {0x03, 0x00};
  EXPECT_FALSE(decode_telemetry(wrong_type).has_value());
}

TEST(WireTelemetry, PeekTypeKnowsTelemetry) {
  const std::vector<std::uint8_t> telemetry = {0x05};
  const std::vector<std::uint8_t> beyond = {0x06};
  EXPECT_EQ(peek_type(telemetry), MsgType::kTelemetry);
  EXPECT_FALSE(peek_type(beyond).has_value());
}

TEST(WireFormat, ConfigEqualityIsExactBits) {
  const WireConfig a{GraphFacet::kIp, 60, 0.001, false};
  WireConfig b = a;
  EXPECT_TRUE(a == b);
  b.collapse_threshold = 0.001 + 1e-22;  // rounds to the same double
  EXPECT_TRUE(a == b);
  b.collapse_threshold = 0.0010000001;
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace ccg::dist

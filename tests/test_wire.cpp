#include "ccg/dist/wire.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <span>
#include <vector>

#include "ccg/store/format.hpp"

namespace ccg::dist {
namespace {

Hello reference_hello() {
  Hello hello;
  hello.version = kWireVersion;
  hello.shard_id = 2;
  hello.shard_count = 4;
  hello.config = {GraphFacet::kIp, 60, 0.001, false};
  return hello;
}

// Golden bytes pin the wire format: any codec change that alters them is an
// incompatible protocol change and must bump kWireVersion. Layout:
// u8 type | varint magic("CCGD") | varint version | varint shard_id |
// varint shard_count | u8 facet | varint window_minutes |
// varint bit_cast<u64>(collapse_threshold) | u8 collapse_monitored.
TEST(WireFormat, GoldenHelloBytes) {
  const std::vector<std::uint8_t> golden = {
      0x01,                          // kHello
      0xC3, 0x86, 0x9D, 0xA2, 0x04,  // magic 0x44474343 "CCGD"
      0x01,                          // version 1
      0x02,                          // shard id 2
      0x04,                          // shard count 4
      0x00,                          // facet kIp
      0x3C,                          // window 60 min
      0xFC, 0xD3, 0xC6, 0x97, 0xDD, 0xC9, 0x98, 0xA8, 0x3F,  // 0.001 bits
      0x00,                          // collapse_monitored false
  };
  EXPECT_EQ(encode_hello(reference_hello()), golden);
}

TEST(WireFormat, GoldenAckWindowAndEosBytes) {
  EXPECT_EQ(encode_hello_ack(), (std::vector<std::uint8_t>{0x02, 0x01}));

  WindowFrame frame;
  frame.shard_id = 1;
  frame.window_begin = 120;
  frame.trace_id = 0xABCDEF;
  frame.keyframe = {0xDE, 0xAD, 0xBE, 0xEF};
  const std::vector<std::uint8_t> golden_window = {
      0x03, 0x01, 0xF0, 0x01, 0xEF, 0x9B, 0xAF, 0x05,
      0x04, 0xDE, 0xAD, 0xBE, 0xEF};
  EXPECT_EQ(encode_window(frame), golden_window);

  EXPECT_EQ(encode_end_of_stream({3, 1000, 7}),
            (std::vector<std::uint8_t>{0x04, 0x03, 0xE8, 0x07, 0x07}));
}

TEST(WireFormat, HelloRoundTrip) {
  const Hello hello = reference_hello();
  const auto decoded = decode_hello(encode_hello(hello));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->version, hello.version);
  EXPECT_EQ(decoded->shard_id, hello.shard_id);
  EXPECT_EQ(decoded->shard_count, hello.shard_count);
  EXPECT_TRUE(decoded->config == hello.config);
  EXPECT_TRUE(decode_hello_ack(encode_hello_ack()));
}

TEST(WireFormat, WindowRoundTripPreservesKeyframeBytes) {
  WindowFrame frame;
  frame.shard_id = 7;
  frame.window_begin = -60;  // pre-epoch windows are legal (zigzag)
  frame.trace_id = 0x1234567890ABCDEFull;
  for (int i = 0; i < 300; ++i) {
    frame.keyframe.push_back(static_cast<std::uint8_t>(i * 13));
  }
  const auto decoded = decode_window(encode_window(frame));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->shard_id, frame.shard_id);
  EXPECT_EQ(decoded->window_begin, frame.window_begin);
  EXPECT_EQ(decoded->trace_id, frame.trace_id);
  EXPECT_EQ(decoded->keyframe, frame.keyframe);
}

TEST(WireFormat, EveryTruncationIsRejected) {
  const auto hello = encode_hello(reference_hello());
  for (std::size_t len = 0; len < hello.size(); ++len) {
    EXPECT_FALSE(decode_hello(std::span(hello).first(len)).has_value())
        << "hello truncated to " << len << " bytes decoded";
  }
  WindowFrame frame;
  frame.shard_id = 1;
  frame.window_begin = 60;
  frame.trace_id = 42;
  frame.keyframe = {1, 2, 3, 4, 5};
  const auto window = encode_window(frame);
  for (std::size_t len = 0; len < window.size(); ++len) {
    EXPECT_FALSE(decode_window(std::span(window).first(len)).has_value())
        << "window truncated to " << len << " bytes decoded";
  }
  const auto eos = encode_end_of_stream({1, 10, 2});
  for (std::size_t len = 0; len < eos.size(); ++len) {
    EXPECT_FALSE(decode_end_of_stream(std::span(eos).first(len)).has_value());
  }
}

TEST(WireFormat, TrailingGarbageIsRejected) {
  auto hello = encode_hello(reference_hello());
  hello.push_back(0x00);
  EXPECT_FALSE(decode_hello(hello).has_value());

  // A window whose length field disagrees with the actual tail — both a
  // byte short and a byte long — is a framing bug, not slack.
  WindowFrame frame;
  frame.shard_id = 1;
  frame.window_begin = 60;
  frame.trace_id = 42;
  frame.keyframe = {9, 9, 9};
  auto window = encode_window(frame);
  window.push_back(0xAA);
  EXPECT_FALSE(decode_window(window).has_value());

  auto eos = encode_end_of_stream({1, 10, 2});
  eos.push_back(0x01);
  EXPECT_FALSE(decode_end_of_stream(eos).has_value());
}

TEST(WireFormat, BadMagicAndBadTypeRejected) {
  auto hello = encode_hello(reference_hello());
  hello[1] ^= 0x01;  // corrupt the magic
  EXPECT_FALSE(decode_hello(hello).has_value());

  EXPECT_FALSE(peek_type({}).has_value());
  const std::vector<std::uint8_t> unknown = {0x7F, 0x00};
  EXPECT_FALSE(peek_type(unknown).has_value());
  EXPECT_FALSE(decode_hello(unknown).has_value());
  EXPECT_FALSE(decode_window(unknown).has_value());
  EXPECT_FALSE(decode_end_of_stream(unknown).has_value());
  EXPECT_FALSE(decode_hello_ack(unknown));
}

TEST(WireFormat, InvalidConfigRejected) {
  Hello hello = reference_hello();
  hello.config.collapse_threshold = 1.5;  // out of [0, 1)
  EXPECT_FALSE(decode_hello(encode_hello(hello)).has_value());

  hello = reference_hello();
  hello.config.collapse_threshold =
      std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(decode_hello(encode_hello(hello)).has_value());

  hello = reference_hello();
  hello.config.window_minutes = 0;
  EXPECT_FALSE(decode_hello(encode_hello(hello)).has_value());

  // shard_id >= shard_count is nonsense regardless of config.
  hello = reference_hello();
  hello.shard_id = 4;
  hello.shard_count = 4;
  EXPECT_FALSE(decode_hello(encode_hello(hello)).has_value());
}

TEST(WireFormat, ZeroTraceIdRejected) {
  // Trace id 0 is the "no trace" sentinel; a shard must never ship it.
  WindowFrame frame;
  frame.shard_id = 1;
  frame.window_begin = 60;
  frame.trace_id = 0;
  frame.keyframe = {1};
  EXPECT_FALSE(decode_window(encode_window(frame)).has_value());
}

TEST(WireFormat, ConfigEqualityIsExactBits) {
  const WireConfig a{GraphFacet::kIp, 60, 0.001, false};
  WireConfig b = a;
  EXPECT_TRUE(a == b);
  b.collapse_threshold = 0.001 + 1e-22;  // rounds to the same double
  EXPECT_TRUE(a == b);
  b.collapse_threshold = 0.0010000001;
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace ccg::dist

#include "ccg/policy/rules.hpp"

#include <gtest/gtest.h>

namespace ccg {
namespace {

/// 3 segments: web x 10, api x 5, db x 2. Policy: ext->web:443,
/// web->api:8080, api->db:5432, api->ext:443.
struct Fixture {
  SegmentMap segments;
  ReachabilityPolicy policy;

  Fixture() {
    std::uint32_t next_ip = 0x0A000001;
    for (int i = 0; i < 10; ++i) segments.assign(IpAddr(next_ip++), 0);
    for (int i = 0; i < 5; ++i) segments.assign(IpAddr(next_ip++), 1);
    for (int i = 0; i < 2; ++i) segments.assign(IpAddr(next_ip++), 2);
    policy.allow({.from_segment = kExternalSegment, .to_segment = 0, .server_port = 443});
    policy.allow({.from_segment = 0, .to_segment = 1, .server_port = 8080});
    policy.allow({.from_segment = 1, .to_segment = 2, .server_port = 5432});
    policy.allow({.from_segment = 1, .to_segment = kExternalSegment, .server_port = 443});
  }
};

TEST(CompileRules, IpUnrolledCountsAreExact) {
  Fixture fx;
  const auto compiled =
      compile_rules(fx.segments, fx.policy, RuleCompilerKind::kIpUnrolled);
  EXPECT_EQ(compiled.per_vm.size(), 17u);

  for (const auto& vm : compiled.per_vm) {
    const auto seg = fx.segments.segment_of(vm.vm);
    if (seg == 0) {
      // web: outbound to 5 api members; inbound one external CIDR rule.
      EXPECT_EQ(vm.outbound_rules, 5u);
      EXPECT_EQ(vm.inbound_rules, 1u);
    } else if (seg == 1) {
      // api: outbound 2 db members + 1 external rule; inbound from 10 web.
      EXPECT_EQ(vm.outbound_rules, 3u);
      EXPECT_EQ(vm.inbound_rules, 10u);
    } else {
      // db: inbound from 5 api.
      EXPECT_EQ(vm.outbound_rules, 0u);
      EXPECT_EQ(vm.inbound_rules, 5u);
    }
  }
  EXPECT_EQ(compiled.total_rules,
            10u * 6 + 5u * 13 + 2u * 5);  // 60 + 65 + 10
  EXPECT_EQ(compiled.max_per_vm, 13u);
  EXPECT_EQ(compiled.vms_over_budget, 0u);
}

TEST(CompileRules, TagBasedCountsAreSegmentSizeIndependent) {
  Fixture fx;
  const auto compiled =
      compile_rules(fx.segments, fx.policy, RuleCompilerKind::kTagBased);
  for (const auto& vm : compiled.per_vm) {
    const auto seg = fx.segments.segment_of(vm.vm);
    if (seg == 0) {
      EXPECT_EQ(vm.outbound_rules, 1u);  // one tag rule for api
      EXPECT_EQ(vm.inbound_rules, 1u);   // external
    } else if (seg == 1) {
      EXPECT_EQ(vm.outbound_rules, 2u);  // db tag + external
      EXPECT_EQ(vm.inbound_rules, 1u);   // web tag
    } else {
      EXPECT_EQ(vm.inbound_rules, 1u);
    }
  }
}

TEST(CompileRules, CompilerOrderingHolds) {
  Fixture fx;
  const auto ip = compile_rules(fx.segments, fx.policy, RuleCompilerKind::kIpUnrolled);
  const auto cidr =
      compile_rules(fx.segments, fx.policy, RuleCompilerKind::kCidrAggregated);
  const auto tag = compile_rules(fx.segments, fx.policy, RuleCompilerKind::kTagBased);
  EXPECT_LE(tag.total_rules, cidr.total_rules);
  EXPECT_LE(cidr.total_rules, ip.total_rules);
  EXPECT_LE(tag.max_per_vm, cidr.max_per_vm);
  EXPECT_LE(cidr.max_per_vm, ip.max_per_vm);
}

TEST(CompileRules, CidrAggregationCompressesContiguousSegments) {
  // One segment of 64 perfectly aligned IPs reachable from one client
  // segment: unrolled needs 64 outbound rules per client, CIDR needs 1.
  SegmentMap segments;
  segments.assign(IpAddr(0x0A000001), 0);  // lone client
  for (std::uint32_t i = 0; i < 64; ++i) {
    segments.assign(IpAddr(0x0A000100u + i), 1);  // aligned /26
  }
  ReachabilityPolicy policy;
  policy.allow({.from_segment = 0, .to_segment = 1, .server_port = 443});

  const auto cidr =
      compile_rules(segments, policy, RuleCompilerKind::kCidrAggregated);
  for (const auto& vm : cidr.per_vm) {
    if (segments.segment_of(vm.vm) == 0) {
      EXPECT_EQ(vm.outbound_rules, 1u);  // one /26 block
    }
  }
  const auto ip = compile_rules(segments, policy, RuleCompilerKind::kIpUnrolled);
  EXPECT_EQ(ip.per_vm.front().total() + ip.per_vm.back().total() > 0, true);
  EXPECT_LT(cidr.total_rules, ip.total_rules);
}

TEST(CompileRules, BudgetViolationsDetected) {
  // One segment of 50 VMs fully meshed to another of 60 on 30 ports:
  // unrolled = 60 * 30 = 1800 outbound rules per client VM.
  SegmentMap segments;
  std::uint32_t next_ip = 0x0A010000;
  for (int i = 0; i < 50; ++i) segments.assign(IpAddr(next_ip++), 0);
  for (int i = 0; i < 60; ++i) segments.assign(IpAddr(next_ip++), 1);
  ReachabilityPolicy policy;
  for (std::uint16_t p = 0; p < 30; ++p) {
    policy.allow({.from_segment = 0, .to_segment = 1,
                  .server_port = static_cast<std::uint16_t>(8000 + p)});
  }
  const auto ip = compile_rules(segments, policy, RuleCompilerKind::kIpUnrolled, 1000);
  EXPECT_EQ(ip.vms_over_budget, 110u);  // both sides blow the budget
  const auto tag = compile_rules(segments, policy, RuleCompilerKind::kTagBased, 1000);
  EXPECT_EQ(tag.vms_over_budget, 0u);
  EXPECT_EQ(tag.max_per_vm, 30u);
}

TEST(ChurnCost, TagBasedTouchesOnlyTheReplacement) {
  Fixture fx;
  const auto cost = churn_cost_of_replacement(fx.segments, fx.policy, 0,
                                              RuleCompilerKind::kTagBased);
  EXPECT_EQ(cost.vm_tables_touched, 1u);
  EXPECT_EQ(cost.rules_rewritten, 2u);  // ext->web and web->api involve seg 0
}

TEST(ChurnCost, IpUnrolledRipplesToPeers) {
  Fixture fx;
  // Churn in api (segment 1): web (allowed to reach api) and db (reached by
  // api) plus api itself must be touched.
  const auto cost = churn_cost_of_replacement(fx.segments, fx.policy, 1,
                                              RuleCompilerKind::kIpUnrolled);
  EXPECT_EQ(cost.vm_tables_touched, 17u);  // everyone, in this topology
  EXPECT_GT(cost.rules_rewritten, cost.vm_tables_touched);
}

TEST(CompileRules, EmptySegmentsAndPolicy) {
  SegmentMap segments;
  ReachabilityPolicy policy;
  const auto compiled = compile_rules(segments, policy, RuleCompilerKind::kIpUnrolled);
  EXPECT_EQ(compiled.total_rules, 0u);
  EXPECT_EQ(compiled.per_vm.size(), 0u);
  EXPECT_EQ(compiled.mean_per_vm, 0.0);
}

TEST(CompileRules, SummaryRenders) {
  Fixture fx;
  const auto compiled = compile_rules(fx.segments, fx.policy, RuleCompilerKind::kTagBased);
  EXPECT_NE(compiled.summary().find("tag-based"), std::string::npos);
}

}  // namespace
}  // namespace ccg

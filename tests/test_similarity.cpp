#include "ccg/segmentation/similarity.hpp"

#include <gtest/gtest.h>

namespace ccg {
namespace {

NodeId ip_node(CommGraph& g, std::uint32_t ip) {
  return g.add_node(NodeKey::for_ip(IpAddr(ip)));
}

void edge(CommGraph& g, NodeId a, NodeId b, std::uint64_t bytes = 1000) {
  g.add_edge_volume(a, b, bytes, bytes / 2, 1, 1, 1, 1);
}

/// Classic role structure: two "frontends" (f1, f2) never talk to each
/// other but both talk to the same three "backends".
struct RoleFixture {
  CommGraph g;
  NodeId f1, f2, b1, b2, b3;
  RoleFixture() {
    f1 = ip_node(g, 1);
    f2 = ip_node(g, 2);
    b1 = ip_node(g, 11);
    b2 = ip_node(g, 12);
    b3 = ip_node(g, 13);
    for (const NodeId f : {f1, f2}) {
      for (const NodeId b : {b1, b2, b3}) edge(g, f, b);
    }
  }
};

TEST(NodeSimilarity, IdenticalNeighborSetsScoreOne) {
  RoleFixture fx;
  EXPECT_DOUBLE_EQ(node_similarity(fx.g, fx.f1, fx.f2), 1.0);
}

TEST(NodeSimilarity, PartialOverlap) {
  RoleFixture fx;
  // b1 and b2 share neighbors {f1, f2}: identical -> 1.0.
  EXPECT_DOUBLE_EQ(node_similarity(fx.g, fx.b1, fx.b2), 1.0);
  // f1's neighbors {b1,b2,b3}; b1's neighbors {f1,f2}: disjoint -> 0.
  EXPECT_DOUBLE_EQ(node_similarity(fx.g, fx.f1, fx.b1), 0.0);
}

TEST(NodeSimilarity, SelfIsOne) {
  RoleFixture fx;
  EXPECT_DOUBLE_EQ(node_similarity(fx.g, fx.f1, fx.f1), 1.0);
}

TEST(NodeSimilarity, DirectEdgeExclusion) {
  // a - b directly connected; both also talk to c.
  CommGraph g;
  const NodeId a = ip_node(g, 1);
  const NodeId b = ip_node(g, 2);
  const NodeId c = ip_node(g, 3);
  edge(g, a, b);
  edge(g, a, c);
  edge(g, b, c);
  // With exclusion: N(a)\{b} = {c}, N(b)\{a} = {c} -> Jaccard 1.
  EXPECT_DOUBLE_EQ(node_similarity(g, a, b, {.exclude_self_edges = true}), 1.0);
  // Without: N(a) = {b, c}, N(b) = {a, c} -> 1 common of 3 in union.
  EXPECT_NEAR(node_similarity(g, a, b, {.exclude_self_edges = false}), 1.0 / 3.0,
              1e-12);
}

TEST(SimilarityClique, ScoresRolePairsHigh) {
  RoleFixture fx;
  const WeightedGraph clique = similarity_clique(fx.g, {.min_score = 0.01});
  // Frontends pair up; backends pair up.
  double f_pair = 0.0, fb_pair = 0.0;
  for (const auto& [peer, w] : clique.neighbors(fx.f1)) {
    if (peer == fx.f2) f_pair = w;
    if (peer == fx.b1) fb_pair = w;
  }
  EXPECT_DOUBLE_EQ(f_pair, 1.0);
  EXPECT_DOUBLE_EQ(fb_pair, 0.0);  // cross-role pairs score 0 and are dropped
}

TEST(SimilarityClique, MinScoreFilters) {
  // Two nodes sharing 1 of many neighbors: small score, filtered out.
  CommGraph g;
  const NodeId a = ip_node(g, 1);
  const NodeId b = ip_node(g, 2);
  const NodeId shared = ip_node(g, 3);
  edge(g, a, shared);
  edge(g, b, shared);
  for (std::uint32_t i = 0; i < 20; ++i) {
    edge(g, a, ip_node(g, 100 + i));
    edge(g, b, ip_node(g, 200 + i));
  }
  // Jaccard(a,b) = 1/41.
  const auto strict = similarity_clique(g, {.min_score = 0.1});
  double w_strict = 0.0;
  for (const auto& [peer, w] : strict.neighbors(a)) {
    if (peer == b) w_strict = w;
  }
  EXPECT_EQ(w_strict, 0.0);

  const auto loose = similarity_clique(g, {.min_score = 0.01});
  double w_loose = 0.0;
  for (const auto& [peer, w] : loose.neighbors(a)) {
    if (peer == b) w_loose = w;
  }
  EXPECT_NEAR(w_loose, 1.0 / 41.0, 1e-12);
}

TEST(SimilarityClique, WeightedJaccardSeparatesVolumeProfiles) {
  // Two clients hit the same two servers, but with inverted volume mixes.
  CommGraph g;
  const NodeId c1 = ip_node(g, 1);
  const NodeId c2 = ip_node(g, 2);
  const NodeId c3 = ip_node(g, 3);
  const NodeId s1 = ip_node(g, 11);
  const NodeId s2 = ip_node(g, 12);
  edge(g, c1, s1, 1'000'000);
  edge(g, c1, s2, 100);
  edge(g, c2, s1, 1'000'000);
  edge(g, c2, s2, 100);
  edge(g, c3, s1, 100);
  edge(g, c3, s2, 1'000'000);

  // Set Jaccard can't tell c1/c2 from c1/c3; weighted overlap can.
  EXPECT_DOUBLE_EQ(node_similarity(g, c1, c3), 1.0);
  const SimilarityOptions weighted{.kind = SimilarityKind::kWeightedJaccard};
  const double same_profile = node_similarity(g, c1, c2, weighted);
  const double diff_profile = node_similarity(g, c1, c3, weighted);
  EXPECT_GT(same_profile, 0.99);
  EXPECT_LT(diff_profile, same_profile - 0.2);
}

TEST(SimilarityClique, CosineVariantBehaves) {
  RoleFixture fx;
  const SimilarityOptions cosine{.kind = SimilarityKind::kCosine};
  EXPECT_NEAR(node_similarity(fx.g, fx.f1, fx.f2, cosine), 1.0, 1e-9);
  EXPECT_NEAR(node_similarity(fx.g, fx.f1, fx.b1, cosine), 0.0, 1e-9);
}

TEST(SimilarityClique, MinHashPathFindsRolePairs) {
  // > 2500 nodes forces the MinHash/LSH path: 2700 "workers" in 3 families,
  // each family sharing its own 40 "servers".
  CommGraph g;
  std::vector<NodeId> servers;
  for (std::uint32_t f = 0; f < 3; ++f) {
    for (std::uint32_t s = 0; s < 40; ++s) {
      servers.push_back(ip_node(g, 100000 + f * 100 + s));
    }
  }
  std::vector<NodeId> workers;
  for (std::uint32_t w = 0; w < 2700; ++w) {
    const NodeId node = ip_node(g, 200000 + w);
    workers.push_back(node);
    const std::uint32_t family = w % 3;
    for (std::uint32_t s = 0; s < 40; ++s) {
      edge(g, node, servers[family * 40 + s]);
    }
  }
  const WeightedGraph clique = similarity_clique(g, {.min_score = 0.3});
  // Same-family worker pairs (Jaccard 1.0) must be found.
  std::size_t same_family_hits = 0;
  for (const auto& [peer, w] : clique.neighbors(workers[0])) {
    if (peer >= workers[0] && (peer - servers.size()) % 3 == 0) ++same_family_hits;
  }
  EXPECT_GT(same_family_hits, 100u);
  // And the weights are near 1.
  for (const auto& [peer, w] : clique.neighbors(workers[0])) {
    EXPECT_GT(w, 0.3);
  }
}

TEST(NodeSimilarity, ServerPortHintSeparatesServicesOnOneClientSet) {
  // The db/cache ambiguity of the IP facet: two backends serve the SAME
  // clients, so their neighbor sets are identical — only the service port
  // differs. The port-typed feature must separate them, while two replicas
  // of the same service (same port) stay similar.
  CommGraph g;
  const NodeId db = ip_node(g, 1);
  const NodeId db2 = ip_node(g, 2);
  const NodeId cache = ip_node(g, 3);
  const NodeId api1 = ip_node(g, 11);
  const NodeId api2 = ip_node(g, 12);
  for (const NodeId api : {api1, api2}) {
    // api initiates to all three backends; direction + port attached.
    g.add_edge_volume(api, db, 1000, 500, 1, 1, 1, 1, 5, 0, 5432);
    g.add_edge_volume(api, db2, 1000, 500, 1, 1, 1, 1, 5, 0, 5432);
    g.add_edge_volume(api, cache, 1000, 500, 1, 1, 1, 1, 5, 0, 6379);
  }
  const double same_service = node_similarity(g, db, db2);
  const double diff_service = node_similarity(g, db, cache);
  EXPECT_DOUBLE_EQ(same_service, 1.0);
  EXPECT_DOUBLE_EQ(diff_service, 0.0);
  // Without direction typing the ambiguity returns.
  EXPECT_DOUBLE_EQ(node_similarity(g, db, cache, {.use_direction = false}), 1.0);
}

TEST(SimilarityClique, EmptyAndTinyGraphs) {
  CommGraph empty;
  EXPECT_EQ(similarity_clique(empty).size(), 0u);

  CommGraph one;
  ip_node(one, 1);
  EXPECT_EQ(similarity_clique(one).size(), 1u);
  EXPECT_EQ(similarity_clique(one).total_weight(), 0.0);
}

}  // namespace
}  // namespace ccg

#include "ccg/common/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ccg {
namespace {

TEST(CsvWriter, WritesPlainFields) {
  std::ostringstream out;
  CsvWriter w(out);
  w.field("a").field(std::uint64_t{42}).field(-3.5);
  w.end_row();
  EXPECT_EQ(out.str(), "a,42,-3.5\n");
  EXPECT_EQ(w.rows_written(), 1u);
}

TEST(CsvWriter, QuotesSpecialCharacters) {
  std::ostringstream out;
  CsvWriter w(out);
  w.field("has,comma").field("has\"quote").field("has\nnewline");
  w.end_row();
  EXPECT_EQ(out.str(), "\"has,comma\",\"has\"\"quote\",\"has\nnewline\"\n");
}

TEST(CsvWriter, MultipleRows) {
  std::ostringstream out;
  CsvWriter w(out);
  w.field("x").field("y");
  w.end_row();
  w.field(std::int64_t{-1}).field(std::int64_t{2});
  w.end_row();
  EXPECT_EQ(out.str(), "x,y\n-1,2\n");
  EXPECT_EQ(w.rows_written(), 2u);
}

TEST(ParseCsvLine, SplitsPlainFields) {
  const auto fields = parse_csv_line("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(ParseCsvLine, HandlesQuotedFields) {
  const auto fields = parse_csv_line("\"has,comma\",\"has\"\"quote\",plain");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "has,comma");
  EXPECT_EQ(fields[1], "has\"quote");
  EXPECT_EQ(fields[2], "plain");
}

TEST(ParseCsvLine, EmptyFieldsPreserved) {
  const auto fields = parse_csv_line(",,");
  ASSERT_EQ(fields.size(), 3u);
  for (const auto& f : fields) EXPECT_TRUE(f.empty());
}

TEST(ParseCsvLine, StripsCarriageReturn) {
  const auto fields = parse_csv_line("a,b\r");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[1], "b");
}

TEST(CsvRoundTrip, WriterOutputParsesBack) {
  std::ostringstream out;
  CsvWriter w(out);
  const std::vector<std::string> original{"plain", "with,comma", "with\"quote", ""};
  for (const auto& f : original) w.field(f);
  w.end_row();
  std::string line = out.str();
  line.pop_back();  // newline
  EXPECT_EQ(parse_csv_line(line), original);
}

}  // namespace
}  // namespace ccg

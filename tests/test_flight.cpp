// Flight recorder: dump contents, sequence numbering, the watchdog's
// stalled-window detection (the acceptance path: a deliberately stalled
// analytics window must produce a dump holding that window's trace id,
// recent log records and a metrics snapshot), and the crash handler.
//
// Suites here are intentionally NOT named Obs*: they sleep, fork (death
// test) and install signal handlers, none of which belong in the TSan run.
#include "ccg/obs/flight.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ccg/analytics/service.hpp"
#include "ccg/obs/log.hpp"
#include "ccg/obs/span.hpp"
#include "ccg/obs/trace.hpp"
#include "ccg/workload/driver.hpp"
#include "ccg/workload/presets.hpp"

namespace ccg {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("ccg_flight_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::vector<fs::path> dumps_in(const std::string& dir,
                               const std::string& reason) {
  std::vector<fs::path> out;
  const std::string prefix = "ccg-flight-" + reason + "-";
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename().string().rfind(prefix, 0) == 0) {
      out.push_back(entry.path());
    }
  }
  return out;
}

TEST(FlightDump, CombinesLogSpansAndMetrics) {
  const auto dir = fresh_dir("dump");
  obs::TraceRing::global().enable(64);
  obs::LogRing::global().clear();
  const std::uint64_t trace = obs::window_trace_id(42);
  {
    obs::TraceScope scope({trace, 0});
    obs::ScopedSpan span(obs::span_histogram("ccg.test.flight"),
                         "ccg.test.flight");
    obs::log_info("evidence line", {obs::field("k", "v")});
  }
  const std::string path =
      obs::dump_flight_record(dir, "test", trace, "window [42, 43)");
  obs::TraceRing::global().disable();
  ASSERT_FALSE(path.empty());

  const std::string body = slurp(path);
  EXPECT_NE(body.find("\"reason\": \"test\""), std::string::npos);
  EXPECT_NE(body.find("\"window_trace\": \""), std::string::npos);
  EXPECT_NE(body.find("\"window_label\": \"window [42, 43)\""),
            std::string::npos);
  EXPECT_NE(body.find("evidence line"), std::string::npos) << "log ring";
  EXPECT_NE(body.find("\"metrics\": {"), std::string::npos);
  EXPECT_NE(body.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(body.find("ccg.test.flight"), std::string::npos) << "span made it";
  EXPECT_EQ(body.find("\"span_count\": 0"), std::string::npos);
}

TEST(FlightDump, SequenceNumbersNeverClobber) {
  const auto dir = fresh_dir("seq");
  const std::string first = obs::dump_flight_record(dir, "test");
  const std::string second = obs::dump_flight_record(dir, "test");
  ASSERT_FALSE(first.empty());
  ASSERT_FALSE(second.empty());
  EXPECT_NE(first, second);
  EXPECT_TRUE(fs::exists(first));
  EXPECT_TRUE(fs::exists(second));
}

/// The acceptance scenario: a window whose analysis stalls past the
/// deadline triggers exactly one dump, within the polling budget, holding
/// the window's trace id, the stall log record and a metrics snapshot.
TEST(Watchdog, StalledWindowDumpsFlightRecordWithinDeadline) {
  const auto dir = fresh_dir("stall");
  obs::TraceRing::global().enable(1 << 12);
  obs::LogRing::global().clear();

  Cluster cluster(presets::tiny(), 99);
  TelemetryHub hub(ProviderProfile::azure(), 99);
  SimulationDriver driver(cluster, hub);
  const auto ips = cluster.monitored_ips();
  AnalyticsService service(
      {.graph = {.facet = GraphFacet::kIp, .window_minutes = 5},
       .training_windows = 1,
       .stall_injection_ms = 400},
      {ips.begin(), ips.end()}, [](const WindowReport&) {});
  hub.set_sink(&service);

  const std::size_t dumps_before = obs::Watchdog::global().dumps();
  obs::Watchdog::global().start(std::chrono::milliseconds(100), dir);
  driver.run(TimeWindow::minutes(0, 5));
  service.flush();  // closes window [0, 5); its analysis sleeps 400 ms
  obs::Watchdog::global().stop();
  obs::TraceRing::global().disable();

  // The 100 ms deadline is polled every 25 ms, so the dump must have landed
  // while deliver() was still sleeping — no waiting needed here.
  ASSERT_EQ(obs::Watchdog::global().dumps(), dumps_before + 1);
  const auto dumps = dumps_in(dir, "stall");
  ASSERT_EQ(dumps.size(), 1u) << "one dump per stalled window";

  const std::string body = slurp(dumps.front());
  char expected_trace[64];
  std::snprintf(expected_trace, sizeof(expected_trace),
                "\"window_trace\": \"0x%llx\"",
                static_cast<unsigned long long>(obs::window_trace_id(0)));
  EXPECT_NE(body.find(expected_trace), std::string::npos)
      << "dump names the stalled window's trace";
  EXPECT_NE(body.find("window stalled past watchdog deadline"),
            std::string::npos)
      << "stall log record captured";
  EXPECT_NE(body.find("\"metrics\": {"), std::string::npos);
  EXPECT_EQ(body.find("\"span_count\": 0,"), std::string::npos)
      << "spans from the run are present";
}

/// After one window stalls and dumps, the next window must get a fresh
/// deadline and a fresh one-dump budget — the watchdog re-arms per window
/// rather than going quiet after its first catch.
TEST(Watchdog, ReArmsAcrossConsecutiveWindows) {
  const auto dir = fresh_dir("rearm");
  const std::size_t dumps_before = obs::Watchdog::global().dumps();
  obs::Watchdog::global().start(std::chrono::milliseconds(80), dir);

  // Window 1: healthy — closed well inside the deadline, no dump.
  obs::Watchdog::global().begin_window(obs::window_trace_id(100), "w100");
  obs::Watchdog::global().end_window();
  EXPECT_EQ(obs::Watchdog::global().dumps(), dumps_before);

  // Windows 2 and 3: each stalls past the deadline; each earns its own dump.
  for (const std::int64_t begin_minute : {200, 300}) {
    obs::Watchdog::global().begin_window(obs::window_trace_id(begin_minute),
                                         "w" + std::to_string(begin_minute));
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    obs::Watchdog::global().end_window();
  }
  obs::Watchdog::global().stop();

  EXPECT_EQ(obs::Watchdog::global().dumps(), dumps_before + 2);
  const auto dumps = dumps_in(dir, "stall");
  ASSERT_EQ(dumps.size(), 2u) << "one dump per stalled window, none extra";

  // Each dump names its own window's trace — evidence isn't recycled.
  std::string bodies;
  for (const auto& path : dumps) bodies += slurp(path);
  for (const std::int64_t begin_minute : {200, 300}) {
    char expected[64];
    std::snprintf(expected, sizeof(expected), "\"window_trace\": \"0x%llx\"",
                  static_cast<unsigned long long>(
                      obs::window_trace_id(begin_minute)));
    EXPECT_NE(bodies.find(expected), std::string::npos)
        << "missing dump for window starting at minute " << begin_minute;
  }
}

/// The `<seq>` in ccg-flight-<reason>-<seq>.json is a process-wide counter:
/// successive dumps carry strictly increasing sequence numbers, so sorting
/// by filename is sorting by time and no dump can clobber another.
TEST(FlightDump, SequenceNumbersIncreaseMonotonically) {
  const auto dir = fresh_dir("monoseq");
  std::vector<long> seqs;
  for (int i = 0; i < 3; ++i) {
    const std::string path = obs::dump_flight_record(dir, "test");
    ASSERT_FALSE(path.empty());
    const std::string name = fs::path(path).filename().string();
    // ccg-flight-test-<seq>.json
    const auto dash = name.rfind('-');
    const auto dot = name.rfind(".json");
    ASSERT_NE(dash, std::string::npos);
    ASSERT_NE(dot, std::string::npos);
    seqs.push_back(std::stol(name.substr(dash + 1, dot - dash - 1)));
  }
  EXPECT_LT(seqs[0], seqs[1]);
  EXPECT_LT(seqs[1], seqs[2]);
}

TEST(Watchdog, HealthyWindowsNeverDump) {
  const auto dir = fresh_dir("quiet");
  Cluster cluster(presets::tiny(), 17);
  TelemetryHub hub(ProviderProfile::azure(), 17);
  SimulationDriver driver(cluster, hub);
  const auto ips = cluster.monitored_ips();
  AnalyticsService service(
      {.graph = {.facet = GraphFacet::kIp, .window_minutes = 5},
       .training_windows = 1},
      {ips.begin(), ips.end()}, [](const WindowReport&) {});
  hub.set_sink(&service);

  const std::size_t dumps_before = obs::Watchdog::global().dumps();
  obs::Watchdog::global().start(std::chrono::milliseconds(2000), dir);
  driver.run(TimeWindow::minutes(0, 10));
  service.flush();
  obs::Watchdog::global().stop();

  EXPECT_EQ(obs::Watchdog::global().dumps(), dumps_before);
  EXPECT_TRUE(dumps_in(dir, "stall").empty());
}

TEST(Watchdog, StartStopIsIdempotent) {
  obs::Watchdog::global().stop();  // no-op when not running
  EXPECT_FALSE(obs::Watchdog::global().running());
  obs::Watchdog::global().start(std::chrono::milliseconds(500), ".");
  EXPECT_TRUE(obs::Watchdog::global().running());
  obs::Watchdog::global().start(std::chrono::milliseconds(700), ".");  // re-arm
  EXPECT_TRUE(obs::Watchdog::global().running());
  obs::Watchdog::global().stop();
  EXPECT_FALSE(obs::Watchdog::global().running());
}

#if GTEST_HAS_DEATH_TEST
TEST(FlightCrashDeathTest, FatalSignalLeavesADump) {
  const auto dir = fresh_dir("crash");
  EXPECT_EXIT(
      {
        obs::install_crash_handler(dir);
        obs::log_error("about to crash");
        std::raise(SIGSEGV);
      },
      ::testing::KilledBySignal(SIGSEGV), "");
  const auto dumps = dumps_in(dir, "signal");
  ASSERT_EQ(dumps.size(), 1u);
  const std::string body = slurp(dumps.front());
  EXPECT_NE(body.find("\"reason\": \"signal\""), std::string::npos);
  EXPECT_NE(body.find("about to crash"), std::string::npos);
  EXPECT_NE(body.find("\"metrics\": {"), std::string::npos);
}
#endif

}  // namespace
}  // namespace ccg

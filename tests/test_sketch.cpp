#include "ccg/telemetry/sketch.hpp"

#include <gtest/gtest.h>

#include <unordered_map>

#include "ccg/common/expect.hpp"
#include "ccg/common/rng.hpp"

namespace ccg {
namespace {

TEST(CountMinSketch, NeverUnderestimates) {
  CountMinSketch cms(256, 4);
  Rng rng(3);
  std::unordered_map<std::uint64_t, std::uint64_t> truth;
  ZipfSampler zipf(500, 1.1);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t key = zipf.sample(rng);
    const std::uint64_t w = 1 + rng.uniform(100);
    truth[key] += w;
    cms.add(key, w);
  }
  for (const auto& [key, count] : truth) {
    EXPECT_GE(cms.estimate(key), count) << key;
  }
}

TEST(CountMinSketch, ErrorWithinClassicBound) {
  constexpr std::size_t kWidth = 1024;
  CountMinSketch cms(kWidth, 5);
  Rng rng(5);
  std::unordered_map<std::uint64_t, std::uint64_t> truth;
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t key = rng.uniform(3000);
    truth[key] += 1;
    cms.add(key);
  }
  // e/width * total is the textbook bound; allow 2x slack for our hashes.
  const double bound = 2.0 * 2.72 * static_cast<double>(cms.total()) / kWidth;
  std::size_t violations = 0;
  for (const auto& [key, count] : truth) {
    if (static_cast<double>(cms.estimate(key) - count) > bound) ++violations;
  }
  EXPECT_LE(violations, truth.size() / 20);  // ~ 1 - 2^-depth confidence
}

TEST(CountMinSketch, UnseenKeysUsuallySmall) {
  CountMinSketch cms(512, 4);
  for (std::uint64_t k = 0; k < 100; ++k) cms.add(k, 10);
  // An unseen key's estimate is bounded by collision noise, not by any
  // real count.
  EXPECT_LE(cms.estimate(987654321), 40u);
  EXPECT_EQ(CountMinSketch(512, 4).estimate(42), 0u);
}

TEST(CountMinSketch, ValidatesParameters) {
  EXPECT_THROW(CountMinSketch(4, 4), ContractViolation);
  EXPECT_THROW(CountMinSketch(64, 0), ContractViolation);
  EXPECT_THROW(CountMinSketch(64, 17), ContractViolation);
}

TEST(SpaceSaving, ExactBelowCapacity) {
  SpaceSaving ss(16);
  for (std::uint64_t k = 0; k < 10; ++k) ss.add(k, (k + 1) * 10);
  const auto entries = ss.entries();
  ASSERT_EQ(entries.size(), 10u);
  EXPECT_EQ(entries[0].key, 9u);
  EXPECT_EQ(entries[0].count, 100u);
  EXPECT_EQ(entries[0].overestimate, 0u);
  EXPECT_EQ(ss.total(), 550u);
}

TEST(SpaceSaving, HeavyHittersAlwaysPresent) {
  // Deterministic guarantee: any key above total/capacity survives.
  SpaceSaving ss(64);
  Rng rng(11);
  std::unordered_map<std::uint64_t, std::uint64_t> truth;
  // 5 elephants among 5000 mice.
  for (std::uint64_t e = 0; e < 5; ++e) {
    truth[1000 + e] = 0;
  }
  for (int i = 0; i < 100000; ++i) {
    std::uint64_t key;
    if (rng.chance(0.5)) {
      key = 1000 + rng.uniform(5);  // elephants: ~10% of stream each
    } else {
      key = 10000 + rng.uniform(5000);  // mice
    }
    truth[key] += 1;
    ss.add(key);
  }
  const auto entries = ss.entries();
  for (std::uint64_t e = 0; e < 5; ++e) {
    bool found = false;
    for (const auto& entry : entries) {
      if (entry.key == 1000 + e) {
        found = true;
        // count is an upper bound; count - overestimate a lower bound.
        EXPECT_GE(entry.count, truth[entry.key]);
        EXPECT_LE(entry.count - entry.overestimate, truth[entry.key]);
      }
    }
    EXPECT_TRUE(found) << "elephant " << e << " evicted";
  }
}

TEST(SpaceSaving, GuaranteedHeavyHittersHaveNoFalsePositives) {
  SpaceSaving ss(64);
  Rng rng(13);
  std::unordered_map<std::uint64_t, std::uint64_t> truth;
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t key =
        rng.chance(0.3) ? 7 : 10000 + rng.uniform(2000);
    truth[key] += 1;
    ss.add(key);
  }
  for (const auto& hh : ss.heavy_hitters(0.05)) {
    EXPECT_GE(truth[hh.key], static_cast<std::uint64_t>(0.05 * 50000));
  }
  // And the single 30% elephant is reported.
  const auto hhs = ss.heavy_hitters(0.05);
  ASSERT_FALSE(hhs.empty());
  EXPECT_EQ(hhs[0].key, 7u);
}

TEST(SpaceSaving, MajorityElementSurvivesInterleavedChurn) {
  // Capacity 2, one 50% majority key interleaved with ever-fresh mice:
  // the mice churn through the min slot while the majority accumulates.
  SpaceSaving ss(2);
  for (std::uint64_t i = 0; i < 100; ++i) {
    ss.add(7);
    ss.add(1000 + i);
  }
  const auto entries = ss.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].key, 7u);
  EXPECT_GE(entries[0].count, 100u);                       // upper bound
  EXPECT_LE(entries[0].count - entries[0].overestimate, 100u);  // lower bound
  EXPECT_THROW(SpaceSaving(0), ContractViolation);
}

TEST(RemoteHeavyHitterSketch, FindsHeavyRemotes) {
  RemoteHeavyHitterSketch sketch(32);
  Rng rng(17);
  const IpAddr elephant(0x08080808);
  for (int i = 0; i < 10000; ++i) {
    sketch.observe(elephant, 1000);
    sketch.observe(IpAddr(0x64000000 + static_cast<std::uint32_t>(rng.uniform(4000))), 10);
  }
  const auto survivors = sketch.survivors(0.01);
  ASSERT_FALSE(survivors.empty());
  EXPECT_EQ(survivors[0], elephant);
  // Memory stays bounded regardless of the 4000 distinct mice.
  EXPECT_LE(sketch.sketch().memory_bytes(), 4096u);
}

}  // namespace
}  // namespace ccg

#include "ccg/telemetry/provider.hpp"

#include <gtest/gtest.h>

namespace ccg {
namespace {

ConnectionSummary record(std::uint16_t lport, std::uint64_t packets,
                         std::uint64_t bytes) {
  return ConnectionSummary{
      .time = MinuteBucket(0),
      .flow = FlowKey{.local_ip = IpAddr(0x0A000001), .local_port = lport,
                      .remote_ip = IpAddr(0x0A000002), .remote_port = 443,
                      .protocol = Protocol::kTcp},
      .counters = TrafficCounters{.packets_sent = packets, .packets_rcvd = packets,
                                  .bytes_sent = bytes, .bytes_rcvd = bytes}};
}

TEST(ProviderProfile, Table3Values) {
  const auto azure = ProviderProfile::azure();
  EXPECT_EQ(azure.aggregation_seconds, 60);
  EXPECT_FALSE(azure.samples());

  const auto aws = ProviderProfile::aws();
  EXPECT_EQ(aws.aggregation_seconds, 60);
  EXPECT_FALSE(aws.samples());

  const auto gcp = ProviderProfile::gcp();
  EXPECT_EQ(gcp.aggregation_seconds, 5);
  EXPECT_TRUE(gcp.samples());
  EXPECT_DOUBLE_EQ(gcp.packet_sample_rate, 0.03);
  EXPECT_DOUBLE_EQ(gcp.flow_sample_rate, 0.50);

  EXPECT_EQ(ProviderProfile::all().size(), 3u);
}

TEST(ProviderSampler, AzurePassesEverythingThrough) {
  ProviderSampler sampler(ProviderProfile::azure(), 1);
  std::vector<ConnectionSummary> in;
  for (std::uint16_t p = 0; p < 100; ++p) in.push_back(record(40000 + p, 10, 5000));
  const auto out = sampler.apply(in);
  EXPECT_EQ(out, in);
  EXPECT_EQ(sampler.stats().records_in, 100u);
  EXPECT_EQ(sampler.stats().records_out, 100u);
}

TEST(ProviderSampler, GcpFlowSamplingKeepsAboutHalf) {
  ProviderSampler sampler(ProviderProfile::gcp(), 7);
  std::vector<ConnectionSummary> in;
  for (std::uint16_t p = 0; p < 2000; ++p) {
    in.push_back(record(static_cast<std::uint16_t>(30000 + p), 1000, 1000000));
  }
  const auto out = sampler.apply(in);
  EXPECT_NEAR(static_cast<double>(out.size()), 1000.0, 120.0);
}

TEST(ProviderSampler, FlowDecisionIsStableAcrossIntervals) {
  ProviderSampler sampler(ProviderProfile::gcp(), 7);
  auto r = record(40123, 1000, 1000000);
  const bool kept_first = !sampler.apply({r}).empty();
  for (int minute = 1; minute < 5; ++minute) {
    r.time = MinuteBucket(minute);
    EXPECT_EQ(!sampler.apply({r}).empty(), kept_first) << "minute " << minute;
  }
}

TEST(ProviderSampler, PacketThinningIsRoughlyUnbiased) {
  ProviderSampler sampler(ProviderProfile::gcp(), 11);
  std::vector<ConnectionSummary> in;
  for (std::uint16_t p = 0; p < 3000; ++p) {
    in.push_back(record(static_cast<std::uint16_t>(20000 + p), 10000, 10000000));
  }
  const auto out = sampler.apply(in);
  ASSERT_FALSE(out.empty());
  // Scaled-up estimates should average back to the true value.
  double mean_bytes = 0.0;
  for (const auto& r : out) mean_bytes += static_cast<double>(r.counters.bytes_sent);
  mean_bytes /= static_cast<double>(out.size());
  EXPECT_NEAR(mean_bytes, 1e7, 1e7 * 0.05);
}

TEST(ProviderSampler, SmallFlowsCanVanishUnderSampling) {
  // A 1-packet flow survives packet sampling only ~3% of the time; across
  // many tiny flows, most disappear — the fidelity cost of GCP's model.
  ProviderSampler sampler(ProviderProfile::gcp(), 13);
  std::vector<ConnectionSummary> in;
  for (std::uint16_t p = 0; p < 1000; ++p) {
    in.push_back(record(static_cast<std::uint16_t>(20000 + p), 1, 64));
  }
  const auto out = sampler.apply(in);
  EXPECT_LT(out.size(), 100u);
}

TEST(ProviderSampler, DeterministicForSameSeed) {
  std::vector<ConnectionSummary> in;
  for (std::uint16_t p = 0; p < 500; ++p) {
    in.push_back(record(static_cast<std::uint16_t>(30000 + p), 100, 100000));
  }
  ProviderSampler a(ProviderProfile::gcp(), 99);
  ProviderSampler b(ProviderProfile::gcp(), 99);
  EXPECT_EQ(a.apply(in), b.apply(in));
}

TEST(CollectionCost, ScalesWithRecords) {
  EXPECT_DOUBLE_EQ(collection_cost_dollars(0, 0.5), 0.0);
  // 1e9 / 40 = 25e6 records per GB; at 0.5 $/GB.
  EXPECT_NEAR(collection_cost_dollars(25'000'000, 0.5), 0.5, 1e-9);
  EXPECT_NEAR(collection_cost_dollars(50'000'000, 0.5), 1.0, 1e-9);
}

}  // namespace
}  // namespace ccg

// End-to-end integration: workload -> SmartNIC telemetry -> graphs ->
// auto-segmentation -> mined policy -> attack detection with higher-order
// policies. This is the paper's whole loop on the tiny test cluster.
#include <gtest/gtest.h>

#include <memory>

#include <sstream>

#include "ccg/graph/builder.hpp"
#include "ccg/graph/serialize.hpp"
#include "ccg/policy/blast_radius.hpp"
#include "ccg/policy/higher_order.hpp"
#include "ccg/policy/reachability.hpp"
#include "ccg/segmentation/auto_segment.hpp"
#include "ccg/segmentation/cluster_metrics.hpp"
#include "ccg/summarize/anomaly.hpp"
#include "ccg/workload/driver.hpp"
#include "ccg/workload/presets.hpp"

namespace ccg {
namespace {

class EndToEnd : public ::testing::Test {
 protected:
  void SetUp() override {
    cluster_ = std::make_unique<Cluster>(presets::tiny(), 31337);
    hub_ = std::make_unique<TelemetryHub>(ProviderProfile::azure(), 31337);
    driver_ = std::make_unique<SimulationDriver>(*cluster_, *hub_);
    const auto ips = cluster_->monitored_ips();
    monitored_ = {ips.begin(), ips.end()};
  }

  CommGraph build_graph(TimeWindow window) {
    GraphBuilder builder({.facet = GraphFacet::kIp,
                          .window_minutes = window.length()},
                         monitored_);
    hub_->set_sink(&builder);
    driver_->run(window);
    hub_->set_sink(nullptr);
    builder.flush();
    return builder.take_graphs().back();
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<TelemetryHub> hub_;
  std::unique_ptr<SimulationDriver> driver_;
  std::unordered_set<IpAddr> monitored_;
};

TEST_F(EndToEnd, SegmentMinePolicyDetectAttackSuppressCodeChange) {
  // --- Hour 0: learn. --------------------------------------------------
  std::vector<std::vector<ConnectionSummary>> baseline_batches;
  for (MinuteBucket m = MinuteBucket(0); m < MinuteBucket(60); m = m.next()) {
    baseline_batches.push_back(driver_->step(m));
  }
  GraphBuilder builder({.facet = GraphFacet::kIp, .window_minutes = 60}, monitored_);
  for (std::size_t i = 0; i < baseline_batches.size(); ++i) {
    builder.on_batch(MinuteBucket(static_cast<std::int64_t>(i)), baseline_batches[i]);
  }
  builder.flush();
  const CommGraph baseline_graph = builder.take_graphs().at(0);

  // Segmentation recovers the ground-truth roles well.
  const Segmentation seg =
      auto_segment(baseline_graph, SegmentationMethod::kJaccardLouvain);
  const auto truth =
      ground_truth_labels(baseline_graph, cluster_->ground_truth_roles());
  const auto agreement = compare_labelings(seg.labels, truth.labels, truth.mask);
  EXPECT_GT(agreement.ari, 0.8) << agreement.to_string();

  // Mine the default-deny policy from the same hour.
  const SegmentMap segments = SegmentMap::from_segmentation(baseline_graph, seg);
  PolicyMiner miner(segments);
  for (const auto& batch : baseline_batches) miner.observe_batch(batch);
  const ReachabilityPolicy policy = miner.build();
  EXPECT_GT(policy.rule_count(), 0u);

  // Segmentation shrinks the blast radius vs the flat network.
  const auto blast = blast_radius(segments, policy);
  EXPECT_GT(blast.reduction_factor, 1.0) << blast.summary();

  // --- Hour 1: clean traffic has no violations. -------------------------
  PolicyChecker clean_checker(segments, policy);
  for (MinuteBucket m = MinuteBucket(60); m < MinuteBucket(120); m = m.next()) {
    clean_checker.check_batch(driver_->step(m));
  }
  EXPECT_TRUE(clean_checker.violations().empty())
      << clean_checker.violations().front().to_string();

  // --- Hour 2: inject a scan (attack) and a code change (benign). -------
  driver_->add_injector(std::make_unique<ScanAttack>(
      ScanAttack::Config{.active = TimeWindow::hour(2),
                         .targets_per_minute = 5,
                         .ports_per_target = 2},
      1));
  driver_->add_injector(std::make_unique<CodeChangeScenario>(
      CodeChangeScenario::Config{.active = TimeWindow::hour(2),
                                 .role = "web",
                                 .new_server_role = "db",
                                 .server_port = 5432,
                                 .connections_per_minute = 4.0},
      2));

  PolicyChecker checker(segments, policy);
  for (MinuteBucket m = MinuteBucket(120); m < MinuteBucket(180); m = m.next()) {
    checker.check_batch(driver_->step(m));
  }
  ASSERT_FALSE(checker.violations().empty());

  // Plain reachability flags both the attack AND the benign change...
  const auto& malicious = driver_->malicious_pairs();
  bool flagged_attack = false, flagged_code_change = false;
  for (const auto& v : checker.violations()) {
    if (malicious.contains(v.pair())) {
      flagged_attack = true;
    } else {
      flagged_code_change = true;
    }
  }
  EXPECT_TRUE(flagged_attack);
  EXPECT_TRUE(flagged_code_change) << "reachability alone has false positives";

  // ...while the similarity policy suppresses the coordinated change but
  // keeps the lone-wolf scan alerts.
  const auto classified = apply_similarity_policy(checker.violations(), segments);
  std::size_t attack_alerts = 0, benign_alerts = 0, benign_suppressed = 0;
  for (const auto& cv : classified) {
    const bool is_attack = malicious.contains(cv.violation.pair());
    if (is_attack && !cv.suppressed) ++attack_alerts;
    if (!is_attack && !cv.suppressed) ++benign_alerts;
    if (!is_attack && cv.suppressed) ++benign_suppressed;
  }
  EXPECT_GT(attack_alerts, 0u);
  EXPECT_GT(benign_suppressed, 0u);
  EXPECT_EQ(benign_alerts, 0u) << "similarity policy should absorb the rollout";
}

TEST_F(EndToEnd, SpectralDetectorSeparatesAttackHourFromQuietHour) {
  std::vector<CommGraph> hours;
  for (std::int64_t h = 0; h < 3; ++h) {
    hours.push_back(build_graph(TimeWindow::hour(h)));
  }
  SpectralAnomalyDetector detector({.rank = 8});
  detector.fit({&hours[0], &hours[1]});

  const auto quiet = detector.score(hours[2]);
  EXPECT_FALSE(detector.is_alert(quiet)) << quiet.to_string();

  // Hour 3 carries a scan.
  driver_->add_injector(std::make_unique<ScanAttack>(
      ScanAttack::Config{.active = TimeWindow::hour(3),
                         .targets_per_minute = 6,
                         .ports_per_target = 3},
      7));
  const CommGraph attacked = build_graph(TimeWindow::hour(3));
  const auto alert = detector.score(attacked);
  EXPECT_GT(alert.zscore, quiet.zscore) << alert.to_string();
}

TEST_F(EndToEnd, GcpSamplingDegradesButPreservesHeavyStructure) {
  // Same cluster seen through GCP's 3%-packet/50%-flow sampling.
  Cluster cluster2(presets::tiny(), 31337);
  TelemetryHub gcp_hub(ProviderProfile::gcp(), 31337);
  SimulationDriver gcp_driver(cluster2, gcp_hub);
  GraphBuilder gcp_builder({.facet = GraphFacet::kIp, .window_minutes = 60},
                           monitored_);
  gcp_hub.set_sink(&gcp_builder);
  gcp_driver.run(TimeWindow::hour(0));
  gcp_builder.flush();
  const CommGraph sampled = gcp_builder.take_graphs().at(0);

  const CommGraph full = build_graph(TimeWindow::hour(0));
  EXPECT_LE(sampled.edge_count(), full.edge_count());
  EXPECT_GT(sampled.edge_count(), 0u);
  // Flow sampling halves coverage but heavy role edges survive.
  EXPECT_GT(static_cast<double>(sampled.edge_count()),
            0.2 * static_cast<double>(full.edge_count()));
}

TEST_F(EndToEnd, WholeStackIsDeterministicForSeed) {
  // Same (preset, seed) -> bit-identical serialized graph, twice through
  // the full stack: generator, flow tables, collector, builder.
  auto serialized_hour = [] {
    Cluster cluster(presets::tiny(), 20260705);
    TelemetryHub hub(ProviderProfile::azure(), 20260705);
    SimulationDriver driver(cluster, hub);
    const auto ips = cluster.monitored_ips();
    GraphBuilder builder({.facet = GraphFacet::kIp, .window_minutes = 60},
                         {ips.begin(), ips.end()});
    hub.set_sink(&builder);
    driver.run(TimeWindow::hour(0));
    builder.flush();
    std::stringstream out;
    write_graph(out, builder.take_graphs().at(0));
    return out.str();
  };
  const std::string first = serialized_hour();
  const std::string second = serialized_hour();
  EXPECT_EQ(first, second);
  EXPECT_GT(first.size(), 100u);
}

TEST_F(EndToEnd, ChurnKeepsPipelineConsistent) {
  // With churn enabled, new IPs appear mid-stream; the hub must register
  // agents for them and the graph should still carry the role structure.
  auto spec = presets::tiny();
  for (auto& role : spec.roles) {
    if (!role.is_external) role.churn_per_hour = 0.5;
  }
  Cluster churny(spec, 99);
  TelemetryHub hub(ProviderProfile::azure(), 99);
  SimulationDriver driver(churny, hub);
  GraphBuilder builder({.facet = GraphFacet::kIp, .window_minutes = 180}, {});
  hub.set_sink(&builder);
  driver.run(TimeWindow::minutes(0, 180));
  EXPECT_GT(driver.stats().churn_events, 0u);
  builder.flush();
  const CommGraph g = builder.take_graphs().at(0);
  // More nodes than the static instance count: retired IPs linger in the
  // window's graph.
  EXPECT_GT(g.node_count(), churny.monitored_count());
}

}  // namespace
}  // namespace ccg

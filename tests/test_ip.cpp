#include "ccg/common/ip.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "ccg/common/expect.hpp"
#include "ccg/common/rng.hpp"

namespace ccg {
namespace {

TEST(IpAddr, ParsesDottedQuad) {
  const auto ip = IpAddr::parse("10.1.2.3");
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->octet(0), 10);
  EXPECT_EQ(ip->octet(1), 1);
  EXPECT_EQ(ip->octet(2), 2);
  EXPECT_EQ(ip->octet(3), 3);
  EXPECT_EQ(ip->to_string(), "10.1.2.3");
}

TEST(IpAddr, ParsesBoundaryValues) {
  EXPECT_EQ(IpAddr::parse("0.0.0.0")->bits(), 0u);
  EXPECT_EQ(IpAddr::parse("255.255.255.255")->bits(), 0xFFFFFFFFu);
}

struct BadIpCase {
  const char* text;
};
class IpParseRejects : public ::testing::TestWithParam<BadIpCase> {};

TEST_P(IpParseRejects, Rejects) {
  EXPECT_FALSE(IpAddr::parse(GetParam().text).has_value()) << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, IpParseRejects,
    ::testing::Values(BadIpCase{""}, BadIpCase{"1.2.3"}, BadIpCase{"1.2.3.4.5"},
                      BadIpCase{"256.0.0.1"}, BadIpCase{"1..2.3"},
                      BadIpCase{"a.b.c.d"}, BadIpCase{"1.2.3.4 "},
                      BadIpCase{" 1.2.3.4"}, BadIpCase{"1.2.3.-4"},
                      BadIpCase{"01.2.3.4567"}, BadIpCase{"1,2,3,4"}));

TEST(IpAddr, RoundTripsRandomAddresses) {
  Rng rng(42);
  for (int i = 0; i < 2000; ++i) {
    const IpAddr ip(static_cast<std::uint32_t>(rng.next()));
    const auto parsed = IpAddr::parse(ip.to_string());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, ip);
  }
}

TEST(IpAddr, OrderingFollowsNumericValue) {
  EXPECT_LT(*IpAddr::parse("10.0.0.1"), *IpAddr::parse("10.0.0.2"));
  EXPECT_LT(*IpAddr::parse("9.255.255.255"), *IpAddr::parse("10.0.0.0"));
}

TEST(IpAddr, DetectsPrivateSpace) {
  EXPECT_TRUE(IpAddr::parse("10.200.3.4")->is_private());
  EXPECT_TRUE(IpAddr::parse("172.16.0.1")->is_private());
  EXPECT_TRUE(IpAddr::parse("172.31.255.255")->is_private());
  EXPECT_TRUE(IpAddr::parse("192.168.1.1")->is_private());
  EXPECT_FALSE(IpAddr::parse("172.32.0.1")->is_private());
  EXPECT_FALSE(IpAddr::parse("11.0.0.1")->is_private());
  EXPECT_FALSE(IpAddr::parse("8.8.8.8")->is_private());
}

TEST(IpAddr, HashSpreadsSequentialAddresses) {
  // Role instances get sequential IPs; the hash must not cluster them.
  std::unordered_set<std::size_t> buckets;
  const std::hash<IpAddr> h;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    buckets.insert(h(IpAddr(0x0A000000u + i)) % 1024);
  }
  EXPECT_GT(buckets.size(), 500u);
}

TEST(IpPrefix, ParsesAndCanonicalizes) {
  const auto p = IpPrefix::parse("10.1.2.3/16");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->base().to_string(), "10.1.0.0");  // host bits zeroed
  EXPECT_EQ(p->length(), 16);
  EXPECT_EQ(p->size(), 65536u);
  EXPECT_EQ(p->to_string(), "10.1.0.0/16");
}

TEST(IpPrefix, RejectsMalformed) {
  EXPECT_FALSE(IpPrefix::parse("10.0.0.0").has_value());
  EXPECT_FALSE(IpPrefix::parse("10.0.0.0/33").has_value());
  EXPECT_FALSE(IpPrefix::parse("10.0.0.0/-1").has_value());
  EXPECT_FALSE(IpPrefix::parse("10.0.0.0/8x").has_value());
  EXPECT_FALSE(IpPrefix::parse("300.0.0.0/8").has_value());
}

TEST(IpPrefix, ContainsAddresses) {
  const auto p = *IpPrefix::parse("10.2.0.0/16");
  EXPECT_TRUE(p.contains(*IpAddr::parse("10.2.0.0")));
  EXPECT_TRUE(p.contains(*IpAddr::parse("10.2.255.255")));
  EXPECT_FALSE(p.contains(*IpAddr::parse("10.3.0.0")));
  EXPECT_FALSE(p.contains(*IpAddr::parse("11.2.0.0")));
}

TEST(IpPrefix, ContainsSubPrefixes) {
  const auto p16 = *IpPrefix::parse("10.2.0.0/16");
  EXPECT_TRUE(p16.contains(*IpPrefix::parse("10.2.4.0/24")));
  EXPECT_TRUE(p16.contains(p16));
  EXPECT_FALSE(p16.contains(*IpPrefix::parse("10.0.0.0/8")));
  EXPECT_FALSE(p16.contains(*IpPrefix::parse("10.3.0.0/24")));
}

TEST(IpPrefix, AtEnumeratesAddresses) {
  const auto p = *IpPrefix::parse("10.2.3.0/30");
  EXPECT_EQ(p.at(0).to_string(), "10.2.3.0");
  EXPECT_EQ(p.at(3).to_string(), "10.2.3.3");
  EXPECT_THROW(p.at(4), ContractViolation);
}

TEST(IpPrefix, SlashZeroCoversEverything) {
  const auto p = *IpPrefix::parse("0.0.0.0/0");
  EXPECT_TRUE(p.contains(*IpAddr::parse("255.1.2.3")));
  EXPECT_EQ(p.size(), std::uint64_t{1} << 32);
}

TEST(AggregateCidrs, EmptyAndSingle) {
  EXPECT_TRUE(aggregate_cidrs({}).empty());
  const auto one = aggregate_cidrs({*IpAddr::parse("10.0.0.5")});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].to_string(), "10.0.0.5/32");
}

TEST(AggregateCidrs, AlignedRunBecomesOneBlock) {
  std::vector<IpAddr> run;
  for (std::uint32_t i = 0; i < 8; ++i) run.push_back(IpAddr(0x0A000000u + i));
  const auto blocks = aggregate_cidrs(run);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].to_string(), "10.0.0.0/29");
}

TEST(AggregateCidrs, MisalignedRunSplitsMinimally) {
  // 10.0.0.1 .. 10.0.0.8: /32 + /31? -> greedy aligned split.
  std::vector<IpAddr> run;
  for (std::uint32_t i = 1; i <= 8; ++i) run.push_back(IpAddr(0x0A000000u + i));
  const auto blocks = aggregate_cidrs(run);
  // 1/32, 2/31, 4/30, 8/32 = 4 blocks.
  ASSERT_EQ(blocks.size(), 4u);
  EXPECT_EQ(blocks[0].to_string(), "10.0.0.1/32");
  EXPECT_EQ(blocks[1].to_string(), "10.0.0.2/31");
  EXPECT_EQ(blocks[2].to_string(), "10.0.0.4/30");
  EXPECT_EQ(blocks[3].to_string(), "10.0.0.8/32");
}

TEST(AggregateCidrs, CoversExactlyTheInputSet) {
  Rng rng(51);
  // Random sparse set with runs and holes; duplicates thrown in.
  std::vector<IpAddr> ips;
  std::uint32_t cursor = 0x0A000000;
  for (int i = 0; i < 300; ++i) {
    cursor += 1 + static_cast<std::uint32_t>(rng.chance(0.3) ? rng.uniform(5) : 0);
    ips.push_back(IpAddr(cursor));
    if (rng.chance(0.1)) ips.push_back(IpAddr(cursor));  // duplicate
  }
  const auto blocks = aggregate_cidrs(ips);

  std::unordered_set<IpAddr> in_set(ips.begin(), ips.end());
  // Every input address is covered...
  for (const IpAddr ip : in_set) {
    bool covered = false;
    for (const auto& b : blocks) covered |= b.contains(ip);
    EXPECT_TRUE(covered) << ip.to_string();
  }
  // ...and nothing else is: total block capacity equals distinct inputs.
  std::uint64_t capacity = 0;
  for (const auto& b : blocks) capacity += b.size();
  EXPECT_EQ(capacity, in_set.size());
}

TEST(AggregateCidrs, ContiguousRoleAllocationCompressesHard) {
  // The shape segments actually have: 40 sequential IPs.
  std::vector<IpAddr> ips;
  for (std::uint32_t i = 0; i < 40; ++i) ips.push_back(IpAddr(0x0A000100u + i));
  const auto blocks = aggregate_cidrs(ips);
  EXPECT_LE(blocks.size(), 3u);  // 32 + 8 (aligned at 0x100)
}

TEST(IpPort, FormatsAndCompares) {
  const IpPort a{*IpAddr::parse("10.0.0.1"), 443};
  const IpPort b{*IpAddr::parse("10.0.0.1"), 8080};
  EXPECT_EQ(a.to_string(), "10.0.0.1:443");
  EXPECT_LT(a, b);
  EXPECT_NE(std::hash<IpPort>{}(a), std::hash<IpPort>{}(b));
}

}  // namespace
}  // namespace ccg

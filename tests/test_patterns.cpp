#include "ccg/summarize/patterns.hpp"

#include <gtest/gtest.h>

namespace ccg {
namespace {

NodeId ip_node(CommGraph& g, std::uint32_t ip) {
  return g.add_node(NodeKey::for_ip(IpAddr(ip)));
}

void edge(CommGraph& g, NodeId a, NodeId b, std::uint64_t bytes) {
  g.add_edge_volume(a, b, bytes, bytes / 4, 1, 1, 1, 1);
}

TEST(MinePatterns, EmptyGraph) {
  const auto report = mine_patterns(CommGraph{});
  EXPECT_TRUE(report.patterns.empty());
}

TEST(MinePatterns, DetectsHubAndSpoke) {
  // One telemetry-sink-like hub with 40 spokes, plus sparse noise.
  CommGraph g;
  const NodeId hub = ip_node(g, 1);
  std::vector<NodeId> spokes;
  for (std::uint32_t i = 0; i < 40; ++i) {
    spokes.push_back(ip_node(g, 100 + i));
    edge(g, hub, spokes.back(), 50'000);
  }
  for (std::uint32_t i = 0; i + 1 < 8; ++i) {
    edge(g, spokes[i], spokes[i + 1], 1'000);  // faint chain among spokes
  }
  const auto report = mine_patterns(g, {.min_hub_degree = 16});
  ASSERT_FALSE(report.patterns.empty());
  EXPECT_EQ(report.patterns[0].kind, PatternKind::kHubAndSpoke);
  EXPECT_EQ(report.patterns[0].members[0], hub);
  EXPECT_GT(report.hub_byte_share, 0.9);
}

TEST(MinePatterns, DetectsChattyClique) {
  // A dense 6-node clique exchanging lots of data + a sparse tail.
  CommGraph g;
  std::vector<NodeId> clique;
  for (std::uint32_t i = 0; i < 6; ++i) clique.push_back(ip_node(g, 10 + i));
  for (std::size_t i = 0; i < clique.size(); ++i) {
    for (std::size_t j = i + 1; j < clique.size(); ++j) {
      edge(g, clique[i], clique[j], 1'000'000);
    }
  }
  NodeId prev = ip_node(g, 100);
  for (std::uint32_t i = 1; i < 10; ++i) {
    const NodeId next = ip_node(g, 100 + i);
    edge(g, prev, next, 500);
    prev = next;
  }
  const auto report = mine_patterns(g);
  ASSERT_FALSE(report.patterns.empty());
  EXPECT_EQ(report.patterns[0].kind, PatternKind::kChattyClique);
  EXPECT_EQ(report.patterns[0].members.size(), 6u);
  EXPECT_GT(report.patterns[0].internal_density, 0.9);
  EXPECT_GT(report.clique_byte_share, 0.9);
}

TEST(MinePatterns, ByteSharesPartitionTotal) {
  CommGraph g;
  const NodeId hub = ip_node(g, 1);
  for (std::uint32_t i = 0; i < 30; ++i) edge(g, hub, ip_node(g, 50 + i), 10'000);
  std::vector<NodeId> clique;
  for (std::uint32_t i = 0; i < 5; ++i) clique.push_back(ip_node(g, 200 + i));
  for (std::size_t i = 0; i < clique.size(); ++i) {
    for (std::size_t j = i + 1; j < clique.size(); ++j) {
      edge(g, clique[i], clique[j], 100'000);
    }
  }
  const auto report = mine_patterns(g, {.min_hub_degree = 16});
  double total_share = 0.0;
  for (const auto& p : report.patterns) total_share += p.byte_share;
  EXPECT_NEAR(total_share, 1.0, 1e-9);
  EXPECT_NEAR(report.hub_byte_share + report.clique_byte_share +
                  report.background_byte_share,
              1.0, 1e-9);
  EXPECT_GT(report.hub_byte_share, 0.0);
  EXPECT_GT(report.clique_byte_share, 0.0);
}

TEST(MinePatterns, SparseRandomGraphIsMostlyBackground) {
  CommGraph g;
  // A long path: no hubs, no dense groups.
  NodeId prev = ip_node(g, 1);
  for (std::uint32_t i = 2; i <= 40; ++i) {
    const NodeId next = ip_node(g, i);
    edge(g, prev, next, 1'000);
    prev = next;
  }
  const auto report = mine_patterns(g);
  EXPECT_GT(report.background_byte_share, 0.5);
}

TEST(ExecutiveSummary, RendersTopPatterns) {
  CommGraph g;
  const NodeId hub = ip_node(g, 1);
  for (std::uint32_t i = 0; i < 30; ++i) edge(g, hub, ip_node(g, 50 + i), 10'000);
  const auto report = mine_patterns(g, {.min_hub_degree = 16});
  const std::string summary = report.executive_summary(g, 3);
  EXPECT_NE(summary.find("% of bytes"), std::string::npos);
  EXPECT_NE(summary.find("hub-and-spoke"), std::string::npos);
}

TEST(PatternKind, Names) {
  EXPECT_EQ(to_string(PatternKind::kHubAndSpoke), "hub-and-spoke");
  EXPECT_EQ(to_string(PatternKind::kChattyClique), "chatty-clique");
  EXPECT_EQ(to_string(PatternKind::kBackground), "background");
}

}  // namespace
}  // namespace ccg

// Structured logging: field formatting, logfmt rendering, trace stamping,
// the bounded LogRing (wraparound, concurrent writers), level counters and
// stderr-threshold parsing.
#include "ccg/obs/log.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "ccg/obs/metrics.hpp"
#include "ccg/obs/trace.hpp"

namespace ccg {
namespace {

/// Logging is always on; tests share the global ring, so each starts from a
/// clean, generously sized one and leaves the default behind.
class ObsLogTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::LogRing::global().set_capacity(256); }
  void TearDown() override { obs::LogRing::global().set_capacity(1024); }
};

TEST(ObsLogLevel, NamesAndParsing) {
  EXPECT_STREQ(obs::level_name(obs::LogLevel::kDebug), "debug");
  EXPECT_STREQ(obs::level_name(obs::LogLevel::kError), "error");
  EXPECT_EQ(obs::parse_level("info", obs::LogLevel::kWarn),
            obs::LogLevel::kInfo);
  EXPECT_EQ(obs::parse_level("warning", obs::LogLevel::kError),
            obs::LogLevel::kWarn);
  EXPECT_EQ(obs::parse_level("bogus", obs::LogLevel::kError),
            obs::LogLevel::kError);
}

TEST(ObsLogField, ValueFormatting) {
  EXPECT_EQ(obs::field("k", "v").value, "v");
  EXPECT_EQ(obs::field("k", std::int64_t{-7}).value, "-7");
  EXPECT_EQ(obs::field("k", std::uint64_t{18446744073709551615ull}).value,
            "18446744073709551615");
  EXPECT_EQ(obs::field("k", true).value, "true");
  EXPECT_EQ(obs::field("k", false).value, "false");
}

TEST_F(ObsLogTest, RecordsCarryLevelMessageAndFields) {
  obs::LogRing::global().clear();
  obs::log_info("window closed", {obs::field("nodes", 12),
                                  obs::field("label", "h1")});
  const auto records = obs::LogRing::global().records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].level, obs::LogLevel::kInfo);
  EXPECT_EQ(records[0].message, "window closed");
  ASSERT_EQ(records[0].fields.size(), 2u);
  EXPECT_EQ(records[0].fields[0].key, "nodes");
  EXPECT_EQ(records[0].fields[0].value, "12");
  EXPECT_NE(records[0].thread_hash, 0u);
}

TEST_F(ObsLogTest, RecordsAreStampedWithTheAmbientTrace) {
  obs::LogRing::global().clear();
  obs::log_warn("outside any trace");
  {
    obs::TraceScope trace({0xABCD, 7});
    obs::log_warn("inside");
  }
  const auto records = obs::LogRing::global().records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].trace_id, 0u);
  EXPECT_EQ(records[1].trace_id, 0xABCDu);
}

TEST_F(ObsLogTest, RenderIsLogfmtWithQuotingOnlyWhereNeeded) {
  obs::LogRecord record;
  record.level = obs::LogLevel::kWarn;
  record.ts_ns = 1234500000;  // 1.2345 s
  record.trace_id = 0xBEEF;
  record.message = "store append rejected";
  record.fields = {obs::field("window", "hour 3"), obs::field("count", 9)};
  EXPECT_EQ(record.render(),
            "level=warn ts=1.234500 trace=0xbeef msg=\"store append rejected\" "
            "window=\"hour 3\" count=9");

  obs::LogRecord bare;
  bare.level = obs::LogLevel::kInfo;
  bare.message = "ok";
  EXPECT_EQ(bare.render(), "level=info ts=0.000000 msg=ok");
}

/// Hostile values must never corrupt the one-record-per-line logfmt
/// framing: newlines, quotes, backslashes and `=` all arrive quoted and
/// escaped, byte-for-byte as pinned here.
TEST_F(ObsLogTest, RenderEscapesControlAndMetaCharacters) {
  obs::LogRecord record;
  record.level = obs::LogLevel::kError;
  record.message = "line one\nline two";
  record.fields = {obs::field("eq", "a=b"),
                   obs::field("quote", "say \"hi\""),
                   obs::field("slash", "C:\\temp"),
                   obs::field("crlf", "a\r\nb"),
                   obs::field("tab", "a\tb")};
  EXPECT_EQ(record.render(),
            "level=error ts=0.000000 msg=\"line one\\nline two\" "
            "eq=\"a=b\" quote=\"say \\\"hi\\\"\" slash=\"C:\\\\temp\" "
            "crlf=\"a\\r\\nb\" tab=\"a\\tb\"");
}

TEST_F(ObsLogTest, RenderedRecordsNeverSpanLines) {
  obs::LogRecord record;
  record.message = "evil\nvalue";  // no spaces: quoting must still trigger
  record.fields = {obs::field("k", "v1\nv2")};
  EXPECT_EQ(record.render().find('\n'), std::string::npos);
}

TEST_F(ObsLogTest, UnsafeKeyCharactersAreNeutralized) {
  obs::LogRecord record;
  record.message = "ok";
  record.fields = {obs::field("bad key=\n", "v")};
  EXPECT_EQ(record.render(), "level=info ts=0.000000 msg=ok bad_key__=v");
}

TEST_F(ObsLogTest, RingWrapsKeepingNewestOldestFirst) {
  obs::LogRing::global().set_capacity(4);
  obs::LogRing::global().clear();
  for (int i = 0; i < 10; ++i) {
    obs::log_debug("m" + std::to_string(i));
  }
  const auto records = obs::LogRing::global().records();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(obs::LogRing::global().dropped(), 6u);
  EXPECT_EQ(records.front().message, "m6");
  EXPECT_EQ(records.back().message, "m9");
}

TEST_F(ObsLogTest, ConcurrentWritersRetainExactlyCapacity) {
  obs::LogRing::global().set_capacity(32);
  obs::LogRing::global().clear();
  constexpr int kThreads = 4, kPerThread = 250;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) obs::log_debug("spam");
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(obs::LogRing::global().records().size(), 32u);
  EXPECT_EQ(obs::LogRing::global().dropped(),
            static_cast<std::size_t>(kThreads * kPerThread) - 32u);
}

TEST_F(ObsLogTest, EveryEmitBumpsItsLevelCounter) {
  obs::Counter& warns = obs::Registry::global().counter("ccg.log.warn");
  const std::uint64_t before = warns.value();
  obs::log_warn("counted");
  obs::log_warn("counted again");
  EXPECT_EQ(warns.value(), before + 2);
}

TEST(ObsLogStderr, ThresholdIsAdjustable) {
  const obs::LogLevel original = obs::stderr_level();
  obs::set_stderr_level(obs::LogLevel::kError);
  EXPECT_EQ(obs::stderr_level(), obs::LogLevel::kError);
  obs::set_stderr_level(original);
  EXPECT_EQ(obs::stderr_level(), original);
}

// --- stderr mirror rate limiting ---------------------------------------------
// admit() is deterministic in the supplied timestamp, so these drive a
// virtual clock instead of sleeping.

constexpr std::uint64_t kSecond = 1'000'000'000ull;

TEST(ObsLogRateLimit, BurstThenRefill) {
  // 2/s with burst 4: the first four records at t=0 pass, the fifth drops.
  obs::StderrRateLimiter limiter(2.0, 4.0);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(limiter.admit(obs::LogLevel::kWarn, 0).mirror) << i;
  }
  EXPECT_FALSE(limiter.admit(obs::LogLevel::kWarn, 0).mirror);
  EXPECT_EQ(limiter.suppressed(), 1u);

  // Half a second accrues one token at 2/s.
  EXPECT_TRUE(limiter.admit(obs::LogLevel::kWarn, kSecond / 2).mirror);
  EXPECT_FALSE(limiter.admit(obs::LogLevel::kWarn, kSecond / 2).mirror);
}

TEST(ObsLogRateLimit, RecoveryReportsTheDrySpell) {
  obs::StderrRateLimiter limiter(1.0, 1.0);
  EXPECT_TRUE(limiter.admit(obs::LogLevel::kError, 0).mirror);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(limiter.admit(obs::LogLevel::kError, 0).mirror);
  }
  // The first record admitted after the dry spell carries the count, so
  // the terminal learns how much it missed; the counter does not reset
  // the lifetime total.
  const auto decision = limiter.admit(obs::LogLevel::kError, 2 * kSecond);
  EXPECT_TRUE(decision.mirror);
  EXPECT_EQ(decision.recovered, 5u);
  EXPECT_EQ(limiter.suppressed(), 5u);
  EXPECT_EQ(limiter.admit(obs::LogLevel::kError, 4 * kSecond).recovered, 0u);
}

TEST(ObsLogRateLimit, LevelsHaveIndependentBuckets) {
  // A debug flood must not starve errors: each level owns a bucket.
  obs::StderrRateLimiter limiter(1.0, 2.0);
  EXPECT_TRUE(limiter.admit(obs::LogLevel::kDebug, 0).mirror);
  EXPECT_TRUE(limiter.admit(obs::LogLevel::kDebug, 0).mirror);
  EXPECT_FALSE(limiter.admit(obs::LogLevel::kDebug, 0).mirror);
  EXPECT_TRUE(limiter.admit(obs::LogLevel::kError, 0).mirror);
  EXPECT_TRUE(limiter.admit(obs::LogLevel::kWarn, 0).mirror);
  EXPECT_EQ(limiter.suppressed(), 1u);
}

TEST(ObsLogRateLimit, BackwardsTimestampsRefillNothing) {
  obs::StderrRateLimiter limiter(1.0, 1.0);
  EXPECT_TRUE(limiter.admit(obs::LogLevel::kInfo, 5 * kSecond).mirror);
  // now < last: no refill, the bucket stays dry.
  EXPECT_FALSE(limiter.admit(obs::LogLevel::kInfo, 1 * kSecond).mirror);
  EXPECT_FALSE(limiter.admit(obs::LogLevel::kInfo, 5 * kSecond).mirror);
  EXPECT_TRUE(limiter.admit(obs::LogLevel::kInfo, 7 * kSecond).mirror);
}

TEST(ObsLogRateLimit, TokensCapAtBurst) {
  obs::StderrRateLimiter limiter(10.0, 3.0);
  // A long quiet period must not bank more than `burst` tokens.
  EXPECT_TRUE(limiter.admit(obs::LogLevel::kWarn, 0).mirror);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(limiter.admit(obs::LogLevel::kWarn, 100 * kSecond).mirror) << i;
  }
  EXPECT_FALSE(limiter.admit(obs::LogLevel::kWarn, 100 * kSecond).mirror);
}

TEST(ObsLogRateLimit, GlobalLimiterExistsAndShardMirrorCounts) {
  // The process-wide limiter is shared state; just pin its existence and
  // that shipped-record mirroring never touches the local ring.
  (void)obs::stderr_rate_limiter();
  obs::LogRing::global().clear();
  obs::LogRecord record;
  record.level = obs::LogLevel::kDebug;  // below the stderr threshold
  record.message = "from a shard";
  obs::mirror_shard_record(3, record);
  EXPECT_TRUE(obs::LogRing::global().records().empty());
}

}  // namespace
}  // namespace ccg

#include "ccg/policy/enforcement.hpp"

#include <gtest/gtest.h>

#include "ccg/workload/driver.hpp"
#include "ccg/workload/presets.hpp"

namespace ccg {
namespace {

const IpAddr kWeb1(0x0A000001), kWeb2(0x0A000002), kApi(0x0A000011),
    kDb(0x0A000021), kExt(0x64000001);

SegmentMap three_segments() {
  SegmentMap map;
  map.assign(kWeb1, 0);
  map.assign(kWeb2, 0);
  map.assign(kApi, 1);
  map.assign(kDb, 2);
  return map;
}

ReachabilityPolicy sample_policy() {
  ReachabilityPolicy p;
  p.allow({.from_segment = kExternalSegment, .to_segment = 0, .server_port = 443});
  p.allow({.from_segment = 0, .to_segment = 1, .server_port = 8080});
  p.allow({.from_segment = 1, .to_segment = 2, .server_port = 5432});
  p.allow({.from_segment = 1, .to_segment = kExternalSegment, .server_port = 443});
  return p;
}

ConnectionSummary record(IpAddr local, std::uint16_t lport, IpAddr remote,
                         std::uint16_t rport, Initiator init) {
  return ConnectionSummary{
      .time = MinuteBucket(0),
      .flow = FlowKey{.local_ip = local, .local_port = lport,
                      .remote_ip = remote, .remote_port = rport,
                      .protocol = Protocol::kTcp},
      .counters = TrafficCounters{.packets_sent = 1, .bytes_sent = 100},
      .initiator = init};
}

class EnforcementKinds
    : public ::testing::TestWithParam<RuleCompilerKind> {};

TEST_P(EnforcementKinds, AllowsExactlyThePolicy) {
  const SegmentMap segments = three_segments();
  const ReachabilityPolicy policy = sample_policy();
  const EnforcementPlane plane(segments, policy, GetParam());

  // web -> api:8080 allowed, from both endpoints' NICs.
  EXPECT_EQ(plane.check(record(kWeb1, 41000, kApi, 8080, Initiator::kLocal)),
            EnforcementPlane::Verdict::kAllow);
  EXPECT_EQ(plane.check(record(kApi, 8080, kWeb1, 41000, Initiator::kRemote)),
            EnforcementPlane::Verdict::kAllow);
  // api -> db:5432 allowed.
  EXPECT_EQ(plane.check(record(kApi, 42000, kDb, 5432, Initiator::kLocal)),
            EnforcementPlane::Verdict::kAllow);
  // web -> db is NOT allowed: denied at both NICs.
  EXPECT_EQ(plane.check(record(kWeb1, 43000, kDb, 5432, Initiator::kLocal)),
            EnforcementPlane::Verdict::kDeny);
  EXPECT_EQ(plane.check(record(kDb, 5432, kWeb1, 43000, Initiator::kRemote)),
            EnforcementPlane::Verdict::kDeny);
  // Wrong port on an allowed pair: denied.
  EXPECT_EQ(plane.check(record(kWeb1, 41000, kApi, 9090, Initiator::kLocal)),
            EnforcementPlane::Verdict::kDeny);
  // External client into web:443 allowed (evaluated at web's NIC).
  EXPECT_EQ(plane.check(record(kWeb1, 443, kExt, 51000, Initiator::kRemote)),
            EnforcementPlane::Verdict::kAllow);
  // External client into api: denied.
  EXPECT_EQ(plane.check(record(kApi, 8080, kExt, 51000, Initiator::kRemote)),
            EnforcementPlane::Verdict::kDeny);
  // api out to the internet on 443 allowed; web out to internet denied.
  EXPECT_EQ(plane.check(record(kApi, 44000, kExt, 443, Initiator::kLocal)),
            EnforcementPlane::Verdict::kAllow);
  EXPECT_EQ(plane.check(record(kWeb1, 44000, kExt, 443, Initiator::kLocal)),
            EnforcementPlane::Verdict::kDeny);
  // A VM we don't manage has no table.
  EXPECT_EQ(plane.check(record(kExt, 51000, kWeb1, 443, Initiator::kLocal)),
            EnforcementPlane::Verdict::kNoTable);
}

INSTANTIATE_TEST_SUITE_P(Compilers, EnforcementKinds,
                         ::testing::Values(RuleCompilerKind::kIpUnrolled,
                                           RuleCompilerKind::kCidrAggregated,
                                           RuleCompilerKind::kTagBased));

TEST(Enforcement, MaterializedTableSizesMatchCompileCounts) {
  const SegmentMap segments = three_segments();
  const ReachabilityPolicy policy = sample_policy();
  for (const auto kind :
       {RuleCompilerKind::kIpUnrolled, RuleCompilerKind::kCidrAggregated,
        RuleCompilerKind::kTagBased}) {
    const EnforcementPlane plane(segments, policy, kind);
    const CompiledRuleSet counts = compile_rules(segments, policy, kind);
    EXPECT_EQ(plane.total_rules(), counts.total_rules);
    for (const auto& vm : counts.per_vm) {
      const VmRuleTable* table = plane.table(vm.vm);
      ASSERT_NE(table, nullptr);
      EXPECT_EQ(table->size(), vm.total()) << vm.vm.to_string();
    }
  }
}

TEST(Enforcement, CompilersAgreeWithPolicyOnLiveTraffic) {
  // Drive the tiny cluster; every record's data-path verdict (under both
  // compilers) must equal the policy-level decision.
  Cluster cluster(presets::tiny(), 77);
  TelemetryHub hub(ProviderProfile::azure(), 77);
  SimulationDriver driver(cluster, hub);

  std::unordered_map<IpAddr, std::string> internal_roles;
  for (const auto& [ip, role] : cluster.ground_truth_roles()) {
    if (cluster.spec().internal_space.contains(ip)) internal_roles.emplace(ip, role);
  }
  const SegmentMap segments = SegmentMap::from_roles(internal_roles);

  PolicyMiner miner(segments);
  std::vector<std::vector<ConnectionSummary>> batches;
  for (std::int64_t m = 0; m < 30; ++m) {
    batches.push_back(driver.step(MinuteBucket(m)));
    miner.observe_batch(batches.back());
  }
  const ReachabilityPolicy policy = miner.build();

  const EnforcementPlane unrolled(segments, policy, RuleCompilerKind::kIpUnrolled);
  const EnforcementPlane cidr(segments, policy, RuleCompilerKind::kCidrAggregated);
  const EnforcementPlane tagged(segments, policy, RuleCompilerKind::kTagBased);

  std::size_t checked = 0;
  for (const auto& batch : batches) {
    for (const auto& rec : batch) {
      const bool policy_allows = policy.allows(rule_for_record(segments, rec));
      const auto expected = policy_allows ? EnforcementPlane::Verdict::kAllow
                                          : EnforcementPlane::Verdict::kDeny;
      EXPECT_EQ(unrolled.check(rec), expected) << rec.to_string();
      EXPECT_EQ(cidr.check(rec), expected) << rec.to_string();
      EXPECT_EQ(tagged.check(rec), expected) << rec.to_string();
      ++checked;
    }
  }
  EXPECT_GT(checked, 500u);
  // And everything in the mined window is, of course, allowed.
  for (const auto& rec : batches.front()) {
    EXPECT_EQ(tagged.check(rec), EnforcementPlane::Verdict::kAllow);
  }
}

TEST(Enforcement, AttackTrafficIsDeniedOnTheDataPath) {
  Cluster cluster(presets::tiny(), 88);
  TelemetryHub hub(ProviderProfile::azure(), 88);
  SimulationDriver driver(cluster, hub);
  std::unordered_map<IpAddr, std::string> internal_roles;
  for (const auto& [ip, role] : cluster.ground_truth_roles()) {
    if (cluster.spec().internal_space.contains(ip)) internal_roles.emplace(ip, role);
  }
  const SegmentMap segments = SegmentMap::from_roles(internal_roles);

  PolicyMiner miner(segments);
  for (std::int64_t m = 0; m < 30; ++m) miner.observe_batch(driver.step(MinuteBucket(m)));
  const EnforcementPlane plane(segments, miner.build(), RuleCompilerKind::kTagBased);

  driver.add_injector(std::make_unique<ScanAttack>(
      ScanAttack::Config{.active = TimeWindow::minutes(30, 10),
                         .targets_per_minute = 10,
                         .dark_space_fraction = 0.0},
      5));
  std::size_t attack_records = 0, denied = 0;
  for (std::int64_t m = 30; m < 40; ++m) {
    for (const auto& rec : driver.step(MinuteBucket(m))) {
      const IpPair pair(rec.flow.local_ip, rec.flow.remote_ip);
      if (!driver.malicious_pairs().contains(pair)) continue;
      ++attack_records;
      denied += plane.check(rec) == EnforcementPlane::Verdict::kDeny;
    }
  }
  ASSERT_GT(attack_records, 0u);
  // Probes that happen to land on a mined (segment, port) channel are
  // allowed — reachability policies can't flag traffic on legitimate
  // channels (the paper's residual blast radius). In this tiny topology
  // that's ~1/4 of probes; the rest must be denied on the data path.
  EXPECT_GT(static_cast<double>(denied) / static_cast<double>(attack_records), 0.7);
}

}  // namespace
}  // namespace ccg

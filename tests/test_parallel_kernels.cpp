// Cross-thread-count determinism of the parallelized analysis kernels, and
// agreement between similarity_clique's exact and LSH candidate paths.
//
// The contract under test is strict: `--threads N` must be BYTE-identical
// to `--threads 1` for similarity, SimRank, and PCA (plus power iteration,
// Jacobi and k-means, which ride the same pool). Every comparison below is
// exact double equality, not tolerance.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <utility>
#include <vector>

#include "ccg/common/rng.hpp"
#include "ccg/linalg/eigen.hpp"
#include "ccg/linalg/kmeans.hpp"
#include "ccg/linalg/pca.hpp"
#include "ccg/parallel/parallel.hpp"
#include "ccg/segmentation/similarity.hpp"
#include "ccg/segmentation/simrank.hpp"

namespace ccg {
namespace {

struct ThreadCountGuard {
  ~ThreadCountGuard() { parallel::set_thread_count(0); }
};

/// Synthetic multi-role cluster: role r of `roles` has `per_role` members,
/// each talking to a seeded random subset of the next role's members —
/// plenty of shared-neighbor structure for similarity and SimRank, plus
/// random cross-role noise edges so the graph is not block-trivial.
CommGraph role_graph(std::size_t roles, std::size_t per_role,
                     std::uint64_t seed) {
  CommGraph g;
  Rng rng(seed);
  std::vector<std::vector<NodeId>> members(roles);
  for (std::size_t r = 0; r < roles; ++r) {
    for (std::size_t i = 0; i < per_role; ++i) {
      members[r].push_back(g.add_node(
          NodeKey::for_ip(IpAddr(static_cast<std::uint32_t>(r * 1000 + i + 1)))));
    }
  }
  for (std::size_t r = 0; r + 1 < roles; ++r) {
    for (const NodeId a : members[r]) {
      for (const NodeId b : members[r + 1]) {
        if (!rng.chance(0.6)) continue;
        const auto bytes = 500 + rng.uniform(100000);
        g.add_edge_volume(a, b, bytes, bytes / 3, 2, 1, 1, 2, /*client_ab=*/1,
                          /*client_ba=*/0,
                          /*port=*/static_cast<std::int32_t>(5000 + r));
      }
    }
  }
  // Noise edges across arbitrary pairs.
  const std::size_t n = g.node_count();
  for (std::size_t i = 0; i < n; ++i) {
    const auto a = static_cast<NodeId>(rng.uniform(n));
    const auto b = static_cast<NodeId>(rng.uniform(n));
    if (a == b) continue;
    g.add_edge_volume(a, b, 100 + rng.uniform(5000), 50, 1, 1, 1, 1);
  }
  return g;
}

using EdgeMap = std::map<std::pair<std::uint32_t, std::uint32_t>, double>;

EdgeMap edge_map(const WeightedGraph& g) {
  EdgeMap out;
  for (std::uint32_t a = 0; a < g.size(); ++a) {
    for (const auto& [b, w] : g.neighbors(a)) {
      if (a < b) out[{a, b}] += w;
    }
  }
  return out;
}

template <typename Fn>
auto at_threads(int threads, Fn&& fn) {
  parallel::set_thread_count(threads);
  auto result = fn();
  parallel::set_thread_count(0);
  return result;
}

// --- similarity --------------------------------------------------------------

TEST(ParallelKernels, SimilarityCliqueBitIdenticalAcrossThreads) {
  ThreadCountGuard guard;
  const CommGraph g = role_graph(6, 40, 7);  // 240 nodes
  for (const SimilarityKind kind :
       {SimilarityKind::kJaccard, SimilarityKind::kWeightedJaccard,
        SimilarityKind::kCosine}) {
    const SimilarityOptions options{.kind = kind};
    const EdgeMap serial =
        at_threads(1, [&] { return edge_map(similarity_clique(g, options)); });
    for (const int threads : {2, 5}) {
      const EdgeMap parallel_run = at_threads(
          threads, [&] { return edge_map(similarity_clique(g, options)); });
      ASSERT_EQ(serial, parallel_run) << "threads=" << threads;
    }
  }
}

TEST(ParallelKernels, SimilarityLshPathBitIdenticalAcrossThreads) {
  ThreadCountGuard guard;
  const CommGraph g = role_graph(6, 40, 11);
  SimilarityOptions options;
  options.exact_pair_limit = 16;  // force the MinHash/LSH path
  const EdgeMap serial =
      at_threads(1, [&] { return edge_map(similarity_clique(g, options)); });
  ASSERT_FALSE(serial.empty());
  for (const int threads : {2, 5}) {
    const EdgeMap parallel_run = at_threads(
        threads, [&] { return edge_map(similarity_clique(g, options)); });
    ASSERT_EQ(serial, parallel_run) << "threads=" << threads;
  }
}

/// LSH prunes candidates but scores them exactly, so its clique must be a
/// subset of the exact clique with identical weights — and it must not miss
/// the strongly similar pairs the banding is tuned for (J >~ 0.25).
TEST(ParallelKernels, LshAndExactPathsAgreeStraddlingTheLimit) {
  ThreadCountGuard guard;
  CommGraph g = role_graph(5, 30, 23);  // 150 nodes
  // Append twin pairs whose tagged feature sets are IDENTICAL (same peers,
  // same direction, same port): their typed Jaccard is exactly 1.0 and
  // their MinHash signatures are equal, so every band co-buckets them —
  // LSH recovery of these pairs is structural, not probabilistic.
  Rng twin_rng(77);
  const std::size_t base = g.node_count();
  for (std::uint32_t t = 0; t < 8; ++t) {
    const NodeId u =
        g.add_node(NodeKey::for_ip(IpAddr(900000 + 2 * t)));
    const NodeId v =
        g.add_node(NodeKey::for_ip(IpAddr(900001 + 2 * t)));
    for (int k = 0; k < 12; ++k) {
      const auto peer = static_cast<NodeId>(twin_rng.uniform(base));
      for (const NodeId twin : {u, v}) {
        g.add_edge_volume(twin, peer, 4096, 1024, 2, 1, 1, 2, /*client_ab=*/1,
                          /*client_ba=*/0,
                          /*port=*/static_cast<std::int32_t>(9000 + t));
      }
    }
  }
  SimilarityOptions exact_options;
  exact_options.exact_pair_limit = 10000;  // force all-pairs
  SimilarityOptions lsh_options;
  lsh_options.exact_pair_limit = 16;  // force LSH on the same graph

  const EdgeMap exact = edge_map(similarity_clique(g, exact_options));
  const EdgeMap lsh = edge_map(similarity_clique(g, lsh_options));

  // Every LSH edge exists in the exact clique with the same score bits.
  for (const auto& [pair, weight] : lsh) {
    const auto it = exact.find(pair);
    ASSERT_NE(it, exact.end())
        << "LSH invented pair " << pair.first << "-" << pair.second;
    ASSERT_EQ(it->second, weight);
  }
  // Every strongly similar exact pair is recovered by the banding. The
  // only pairs above 0.75 in this graph are the injected twins (role pairs
  // top out near 0.45 at 0.6 edge density), and equal signatures collide
  // in every one of the 24 bands.
  std::size_t strong = 0, recovered = 0;
  for (const auto& [pair, weight] : exact) {
    if (weight < 0.75) continue;
    ++strong;
    recovered += lsh.count(pair);
  }
  ASSERT_GT(strong, 0u);
  EXPECT_EQ(recovered, strong);
}

/// The default limit itself: just below stays exact (clique == forced-exact
/// run), just above switches to LSH (clique == forced-LSH run).
TEST(ParallelKernels, DefaultLimitStraddle) {
  ThreadCountGuard guard;
  const SimilarityOptions defaults;
  // Two graphs straddling exact_pair_limit, scaled down via the option so
  // the test stays fast: same code path selection logic as the 2500 default.
  SimilarityOptions small_limit = defaults;
  small_limit.exact_pair_limit = 120;

  const CommGraph below = role_graph(4, 30, 31);  // 120 nodes == limit
  const CommGraph above = role_graph(4, 31, 31);  // 124 nodes > limit

  SimilarityOptions forced_exact = small_limit;
  forced_exact.exact_pair_limit = 100000;
  SimilarityOptions forced_lsh = small_limit;
  forced_lsh.exact_pair_limit = 1;

  // At the limit: the small_limit run must equal the forced-exact run.
  EXPECT_EQ(edge_map(similarity_clique(below, small_limit)),
            edge_map(similarity_clique(below, forced_exact)));
  // Over the limit: the small_limit run must equal the forced-LSH run.
  EXPECT_EQ(edge_map(similarity_clique(above, small_limit)),
            edge_map(similarity_clique(above, forced_lsh)));
}

// --- SimRank -----------------------------------------------------------------

TEST(ParallelKernels, SimRankBitIdenticalAcrossThreads) {
  ThreadCountGuard guard;
  const CommGraph g = role_graph(5, 24, 13);  // 120 nodes
  for (const bool plus_plus : {false, true}) {
    const SimRankOptions options{.iterations = 4, .plus_plus = plus_plus};
    const std::vector<double> serial =
        at_threads(1, [&] { return simrank_scores(g, options); });
    for (const int threads : {2, 5}) {
      const std::vector<double> parallel_run =
          at_threads(threads, [&] { return simrank_scores(g, options); });
      ASSERT_EQ(serial, parallel_run)
          << "threads=" << threads << " plus_plus=" << plus_plus;
    }
  }
}

// --- PCA / eigen -------------------------------------------------------------

Matrix random_symmetric(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = rng.normal();
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  return m;
}

TEST(ParallelKernels, JacobiEigenBitIdenticalAcrossThreads) {
  ThreadCountGuard guard;
  // 300 >= the Jacobi parallel cutoff (256), so threads>1 exercises the
  // pooled rotation path against the inline one.
  const Matrix m = random_symmetric(300, 41);
  const EigenDecomposition serial =
      at_threads(1, [&] { return jacobi_eigen(m); });
  for (const int threads : {2, 4}) {
    const EigenDecomposition parallel_run =
        at_threads(threads, [&] { return jacobi_eigen(m); });
    ASSERT_EQ(serial.values, parallel_run.values) << "threads=" << threads;
    ASSERT_EQ(serial.vectors.data(), parallel_run.vectors.data())
        << "threads=" << threads;
  }
}

TEST(ParallelKernels, PcaCurveAndReconstructionBitIdenticalAcrossThreads) {
  ThreadCountGuard guard;
  const Matrix m = random_symmetric(96, 43);
  const auto run = [&] {
    const PcaSummary pca(m);
    return std::make_pair(pca.error_curve(20), pca.reconstruct(10).data());
  };
  const auto serial = at_threads(1, run);
  EXPECT_EQ(serial.first.front(), 1.0);  // k=0 residual is the original
  for (const int threads : {2, 4}) {
    const auto parallel_run = at_threads(threads, run);
    ASSERT_EQ(serial.first, parallel_run.first) << "threads=" << threads;
    ASSERT_EQ(serial.second, parallel_run.second) << "threads=" << threads;
  }
}

TEST(ParallelKernels, PowerIterationBitIdenticalAcrossThreads) {
  ThreadCountGuard guard;
  const Matrix m = random_symmetric(150, 47);
  const PowerIterationResult serial =
      at_threads(1, [&] { return power_iteration(m); });
  for (const int threads : {2, 4}) {
    const PowerIterationResult parallel_run =
        at_threads(threads, [&] { return power_iteration(m); });
    ASSERT_EQ(serial.value, parallel_run.value);
    ASSERT_EQ(serial.vector, parallel_run.vector);
    ASSERT_EQ(serial.iterations, parallel_run.iterations);
  }
}

// --- k-means -----------------------------------------------------------------

TEST(ParallelKernels, KMeansBitIdenticalAcrossThreads) {
  ThreadCountGuard guard;
  Rng rng(51);
  Matrix data(400, 8);
  for (std::size_t r = 0; r < data.rows(); ++r) {
    const double center = static_cast<double>(r % 4) * 10.0;
    for (std::size_t c = 0; c < data.cols(); ++c) {
      data(r, c) = center + rng.normal();
    }
  }
  const KMeansResult serial =
      at_threads(1, [&] { return kmeans(data, 4, {.seed = 3}); });
  for (const int threads : {2, 4}) {
    const KMeansResult parallel_run =
        at_threads(threads, [&] { return kmeans(data, 4, {.seed = 3}); });
    ASSERT_EQ(serial.labels, parallel_run.labels) << "threads=" << threads;
    ASSERT_EQ(serial.centroids.data(), parallel_run.centroids.data());
    ASSERT_EQ(serial.inertia, parallel_run.inertia);
  }
}

}  // namespace
}  // namespace ccg

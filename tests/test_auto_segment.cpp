#include "ccg/segmentation/auto_segment.hpp"

#include <gtest/gtest.h>

#include "ccg/graph/builder.hpp"
#include "ccg/segmentation/cluster_metrics.hpp"
#include "ccg/telemetry/collector.hpp"
#include "ccg/workload/driver.hpp"
#include "ccg/workload/presets.hpp"

namespace ccg {
namespace {

/// Drives the tiny 3-tier cluster for an hour and builds its IP graph.
struct SimulatedGraph {
  Cluster cluster;
  CommGraph graph;

  explicit SimulatedGraph(std::uint64_t seed = 7, double rate = 1.0)
      : cluster(presets::tiny(rate), seed) {
    TelemetryHub hub(ProviderProfile::azure(), seed);
    SimulationDriver driver(cluster, hub);
    const auto monitored = cluster.monitored_ips();
    GraphBuilder builder({.facet = GraphFacet::kIp, .window_minutes = 60},
                         {monitored.begin(), monitored.end()});
    hub.set_sink(&builder);
    driver.run(TimeWindow::hour(0));
    builder.flush();
    graph = builder.take_graphs().at(0);
  }
};

TEST(AutoSegment, PaperMethodRecoversTinyClusterRoles) {
  SimulatedGraph sim;
  const Segmentation seg =
      auto_segment(sim.graph, SegmentationMethod::kJaccardLouvain);
  const auto truth = ground_truth_labels(sim.graph, sim.cluster.ground_truth_roles());
  const auto agreement = compare_labelings(seg.labels, truth.labels, truth.mask);
  // web/api/db/client have crisply different neighbor sets in this topology.
  EXPECT_GT(agreement.ari, 0.9) << agreement.to_string();
  EXPECT_GT(agreement.purity, 0.9);
}

TEST(AutoSegment, FewerSegmentsThanResources) {
  // The paper's premise: "there are many fewer roles than resources".
  SimulatedGraph sim;
  const Segmentation seg =
      auto_segment(sim.graph, SegmentationMethod::kJaccardLouvain);
  EXPECT_LT(seg.segment_count, sim.graph.node_count());
  EXPECT_GE(seg.segment_count, 2u);
}

TEST(AutoSegment, AllMethodsProduceValidLabelings) {
  SimulatedGraph sim;
  const auto all = segment_all_methods(sim.graph);
  EXPECT_EQ(all.size(), 6u);
  for (const auto& seg : all) {
    EXPECT_EQ(seg.labels.size(), sim.graph.node_count()) << to_string(seg.method);
    EXPECT_GE(seg.segment_count, 1u);
    const auto sizes = seg.segment_sizes();
    std::size_t total = 0;
    for (const auto s : sizes) total += s;
    EXPECT_EQ(total, sim.graph.node_count());
  }
}

TEST(AutoSegment, ModularityBaselineMergesAcrossRoles) {
  // Byte-weighted modularity groups heavy communicators (web with api),
  // which crosses role boundaries — the paper's Fig. 3 observation. Its
  // role agreement must not beat the paper method's.
  SimulatedGraph sim;
  const auto truth = ground_truth_labels(sim.graph, sim.cluster.ground_truth_roles());
  const auto paper = auto_segment(sim.graph, SegmentationMethod::kJaccardLouvain);
  const auto byte_mod = auto_segment(sim.graph, SegmentationMethod::kByteModularity);
  const double ari_paper =
      compare_labelings(paper.labels, truth.labels, truth.mask).ari;
  const double ari_mod =
      compare_labelings(byte_mod.labels, truth.labels, truth.mask).ari;
  EXPECT_GE(ari_paper, ari_mod - 1e-9);
}

TEST(AutoSegment, DeterministicForSeed) {
  SimulatedGraph sim;
  const auto a = auto_segment(sim.graph, SegmentationMethod::kJaccardLouvain,
                              {.seed = 3});
  const auto b = auto_segment(sim.graph, SegmentationMethod::kJaccardLouvain,
                              {.seed = 3});
  EXPECT_EQ(a.labels, b.labels);
}

TEST(Segmentation, MembersOfMatchesLabels) {
  SimulatedGraph sim;
  const auto seg = auto_segment(sim.graph, SegmentationMethod::kJaccardLouvain);
  for (std::uint32_t s = 0; s < seg.segment_count; ++s) {
    for (const NodeId member : seg.members_of(s)) {
      EXPECT_EQ(seg.labels[member], s);
    }
  }
}

TEST(AutoSegment, MethodNamesAreStable) {
  EXPECT_EQ(to_string(SegmentationMethod::kJaccardLouvain), "jaccard+louvain");
  EXPECT_EQ(to_string(SegmentationMethod::kSimRank), "simrank");
  EXPECT_EQ(to_string(SegmentationMethod::kByteModularity),
            "byte-weighted-modularity");
}

}  // namespace
}  // namespace ccg

// FleetRegistry: accumulation semantics for shipped telemetry deltas,
// labeled snapshot rendering, retention caps for shipped logs/spans, and
// the local+fleet snapshot merge the ops endpoint exposes.
#include "ccg/obs/fleet.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "ccg/obs/metrics.hpp"

namespace ccg {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// The fleet registry is global (the aggregator owns it); every test
/// starts and ends empty so ordering doesn't matter.
class FleetTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::FleetRegistry::global().clear(); }
  void TearDown() override { obs::FleetRegistry::global().clear(); }
};

obs::Snapshot counter_delta(const std::string& name, std::uint64_t value) {
  obs::Snapshot s;
  s.counters.push_back({name, value, {}});
  return s;
}

TEST_F(FleetTest, StartsInactiveAndEmpty) {
  obs::FleetRegistry& fleet = obs::FleetRegistry::global();
  EXPECT_FALSE(fleet.active());
  EXPECT_EQ(fleet.frames_applied(), 0u);
  const obs::Snapshot snap = fleet.labeled_snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

TEST_F(FleetTest, CountersAccumulateAcrossDeltasPerShard) {
  obs::FleetRegistry& fleet = obs::FleetRegistry::global();
  fleet.apply(0, counter_delta("ccg.pipeline.records", 100));
  fleet.apply(1, counter_delta("ccg.pipeline.records", 40));
  fleet.apply(0, counter_delta("ccg.pipeline.records", 11));

  EXPECT_TRUE(fleet.active());
  EXPECT_EQ(fleet.frames_applied(), 3u);
  const obs::Snapshot snap = fleet.labeled_snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].value, 111u);  // shard 0: 100 + 11
  ASSERT_EQ(snap.counters[0].labels.size(), 1u);
  EXPECT_EQ(snap.counters[0].labels[0].first, "shard");
  EXPECT_EQ(snap.counters[0].labels[0].second, "0");
  EXPECT_EQ(snap.counters[1].value, 40u);
  EXPECT_EQ(snap.counters[1].labels[0].second, "1");
}

TEST_F(FleetTest, GaugesAreLastWrite) {
  obs::FleetRegistry& fleet = obs::FleetRegistry::global();
  obs::Snapshot d;
  d.gauges.push_back({"ccg.pipeline.queue_depth_hwm", 4.0, {}});
  fleet.apply(2, d);
  d.gauges[0].value = 1.5;
  fleet.apply(2, d);
  const obs::Snapshot snap = fleet.labeled_snapshot();
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 1.5);
  EXPECT_EQ(snap.gauges[0].labels[0].second, "2");
}

TEST_F(FleetTest, LabeledSnapshotSortsByNameThenNumericShard) {
  obs::FleetRegistry& fleet = obs::FleetRegistry::global();
  // Shard 10 must sort after shard 2 (numeric, not lexicographic).
  fleet.apply(10, counter_delta("b.metric", 1));
  fleet.apply(2, counter_delta("b.metric", 1));
  fleet.apply(7, counter_delta("a.metric", 1));
  const obs::Snapshot snap = fleet.labeled_snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "a.metric");
  EXPECT_EQ(snap.counters[1].name, "b.metric");
  EXPECT_EQ(snap.counters[1].labels[0].second, "2");
  EXPECT_EQ(snap.counters[2].labels[0].second, "10");
}

TEST_F(FleetTest, HistogramBucketsAccumulateAndQuantilesRecompute) {
  obs::FleetRegistry& fleet = obs::FleetRegistry::global();
  obs::Snapshot d;
  obs::HistogramSample h;
  h.name = "ccg.analytics.window.seconds";
  h.buckets = {{1.0, 2}, {2.0, 0}, {kInf, 0}};
  h.count = 2;
  h.sum = 1.0;
  h.min = 0.4;
  h.max = 0.6;
  d.histograms.push_back(h);
  fleet.apply(0, d);

  obs::Snapshot d2;
  h.buckets = {{1.0, 0}, {2.0, 3}, {kInf, 0}};
  h.count = 3;
  h.sum = 4.5;
  h.min = 0.4;
  h.max = 1.8;
  d2.histograms.push_back(h);
  fleet.apply(0, d2);

  const obs::Snapshot snap = fleet.labeled_snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const obs::HistogramSample& merged = snap.histograms[0];
  EXPECT_EQ(merged.count, 5u);
  EXPECT_DOUBLE_EQ(merged.sum, 5.5);
  EXPECT_DOUBLE_EQ(merged.max, 1.8);  // last-write, not a diff
  ASSERT_EQ(merged.buckets.size(), 3u);
  EXPECT_EQ(merged.buckets[0].second, 2u);
  EXPECT_EQ(merged.buckets[1].second, 3u);
  // Quantiles come from the accumulated buckets, clamped to [min, max].
  EXPECT_DOUBLE_EQ(
      merged.p50, obs::quantile_from_buckets(merged.buckets, merged.count,
                                             merged.min, merged.max, 0.5));
  EXPECT_GE(merged.p50, merged.min);
  EXPECT_LE(merged.p99, merged.max);
}

TEST_F(FleetTest, HistogramLayoutChangeReplacesTheSeries) {
  obs::FleetRegistry& fleet = obs::FleetRegistry::global();
  obs::Snapshot d;
  obs::HistogramSample h;
  h.name = "ccg.test.lat";
  h.buckets = {{1.0, 5}, {kInf, 0}};
  h.count = 5;
  h.sum = 2.5;
  d.histograms.push_back(h);
  fleet.apply(0, d);

  // A shard restart re-registers the histogram with different options; the
  // old accumulation would be meaningless, so the series is replaced.
  obs::Snapshot d2;
  h.buckets = {{0.5, 1}, {1.0, 0}, {kInf, 0}};
  h.count = 1;
  h.sum = 0.25;
  d2.histograms.clear();
  d2.histograms.push_back(h);
  fleet.apply(0, d2);

  const obs::Snapshot snap = fleet.labeled_snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
  EXPECT_EQ(snap.histograms[0].buckets.size(), 3u);
}

TEST_F(FleetTest, LogRetentionKeepsTheNewestPerShard) {
  obs::FleetRegistry& fleet = obs::FleetRegistry::global();
  const std::size_t cap = obs::FleetRegistry::log_capacity();
  std::vector<obs::LogRecord> records;
  for (std::size_t i = 0; i < cap + 10; ++i) {
    obs::LogRecord r;
    r.message = "m" + std::to_string(i);
    records.push_back(std::move(r));
  }
  fleet.add_logs(1, records);
  const auto logs = fleet.recent_logs();
  ASSERT_EQ(logs.size(), cap);
  EXPECT_EQ(logs.front().shard, 1u);
  EXPECT_EQ(logs.front().record.message, "m10");  // oldest 10 trimmed
  EXPECT_EQ(logs.back().record.message, "m" + std::to_string(cap + 9));
}

TEST_F(FleetTest, SpanRetentionDropsOverflowAndCountsIt) {
  obs::FleetRegistry& fleet = obs::FleetRegistry::global();
  const std::size_t cap = obs::FleetRegistry::span_capacity();
  std::vector<obs::TraceEvent> spans(cap + 7);
  for (std::size_t i = 0; i < spans.size(); ++i) {
    spans[i].name = "s";
    spans[i].start_ns = i;
  }
  fleet.add_spans(3, spans);
  const auto by_shard = fleet.spans_by_shard();
  ASSERT_EQ(by_shard.size(), 1u);
  EXPECT_EQ(by_shard[0].first, 3u);
  EXPECT_EQ(by_shard[0].second.size(), cap);
  EXPECT_EQ(fleet.spans_dropped(3), 7u);
}

TEST_F(FleetTest, MergeSnapshotsPutsUnlabeledFirstPerName) {
  obs::Snapshot local;
  local.counters.push_back({"b.shared", 9, {}});
  local.counters.push_back({"c.local_only", 1, {}});

  obs::Snapshot fleet;
  fleet.counters.push_back({"a.fleet_only", 2, {{"shard", "0"}}});
  fleet.counters.push_back({"b.shared", 4, {{"shard", "0"}}});
  fleet.counters.push_back({"b.shared", 5, {{"shard", "1"}}});

  const obs::Snapshot merged = obs::merge_snapshots(local, fleet);
  ASSERT_EQ(merged.counters.size(), 5u);
  EXPECT_EQ(merged.counters[0].name, "a.fleet_only");
  // Same name: the unlabeled local series leads its shard series, so the
  // Prometheus renderer emits one header block for the family.
  EXPECT_EQ(merged.counters[1].name, "b.shared");
  EXPECT_TRUE(merged.counters[1].labels.empty());
  EXPECT_EQ(merged.counters[2].labels[0].second, "0");
  EXPECT_EQ(merged.counters[3].labels[0].second, "1");
  EXPECT_EQ(merged.counters[4].name, "c.local_only");
}

TEST_F(FleetTest, ClearResetsEverything) {
  obs::FleetRegistry& fleet = obs::FleetRegistry::global();
  fleet.apply(0, counter_delta("x", 1));
  fleet.add_spans(0, std::vector<obs::TraceEvent>(3));
  fleet.clear();
  EXPECT_FALSE(fleet.active());
  EXPECT_EQ(fleet.frames_applied(), 0u);
  EXPECT_TRUE(fleet.spans_by_shard().empty());
  EXPECT_TRUE(fleet.recent_logs().empty());
}

}  // namespace
}  // namespace ccg

#include "ccg/common/time.hpp"

#include <gtest/gtest.h>

namespace ccg {
namespace {

TEST(MinuteBucket, HourAndMinuteOfHour) {
  EXPECT_EQ(MinuteBucket(0).hour(), 0);
  EXPECT_EQ(MinuteBucket(59).hour(), 0);
  EXPECT_EQ(MinuteBucket(60).hour(), 1);
  EXPECT_EQ(MinuteBucket(75).minute_of_hour(), 15);
  EXPECT_EQ(MinuteBucket(75).to_string(), "h1:15");
  EXPECT_EQ(MinuteBucket(61).to_string(), "h1:01");
}

TEST(MinuteBucket, NegativeIndicesFloorCorrectly) {
  EXPECT_EQ(MinuteBucket(-1).hour(), -1);
  EXPECT_EQ(MinuteBucket(-1).minute_of_hour(), 59);
  EXPECT_EQ(MinuteBucket(-60).hour(), -1);
  EXPECT_EQ(MinuteBucket(-60).minute_of_hour(), 0);
  EXPECT_EQ(MinuteBucket(-61).hour(), -2);
}

TEST(MinuteBucket, Arithmetic) {
  const MinuteBucket m(100);
  EXPECT_EQ((m + 5).index(), 105);
  EXPECT_EQ(m.next().index(), 101);
  EXPECT_EQ(MinuteBucket(105) - m, 5);
  EXPECT_LT(m, m.next());
}

TEST(TimeWindow, HourFactory) {
  const TimeWindow w = TimeWindow::hour(2);
  EXPECT_EQ(w.begin().index(), 120);
  EXPECT_EQ(w.end().index(), 180);
  EXPECT_EQ(w.length(), 60);
  EXPECT_TRUE(w.contains(MinuteBucket(120)));
  EXPECT_TRUE(w.contains(MinuteBucket(179)));
  EXPECT_FALSE(w.contains(MinuteBucket(180)));
  EXPECT_FALSE(w.contains(MinuteBucket(119)));
}

TEST(TimeWindow, MinutesFactoryAndFollowing) {
  const TimeWindow w = TimeWindow::minutes(30, 15);
  EXPECT_EQ(w.length(), 15);
  const TimeWindow next = w.following();
  EXPECT_EQ(next.begin().index(), 45);
  EXPECT_EQ(next.length(), 15);
}

TEST(TimeWindow, EmptyWindows) {
  EXPECT_TRUE(TimeWindow().empty());
  EXPECT_TRUE(TimeWindow(MinuteBucket(5), MinuteBucket(5)).empty());
  EXPECT_TRUE(TimeWindow(MinuteBucket(6), MinuteBucket(5)).empty());
  EXPECT_EQ(TimeWindow(MinuteBucket(6), MinuteBucket(5)).length(), 0);
  EXPECT_FALSE(TimeWindow(MinuteBucket(5), MinuteBucket(6)).empty());
}

TEST(TimeWindow, ToString) {
  EXPECT_EQ(TimeWindow::hour(1).to_string(), "[h1:00, h2:00)");
}

}  // namespace
}  // namespace ccg

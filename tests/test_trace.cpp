// Causal tracing: TraceContext propagation, the TraceRing (wraparound,
// concurrent writers), ScopedSpan parenting, the Chrome trace-event JSON
// exporter goldens, and the end-to-end contracts the flight recorder and
// `ccgraph trace` rely on — every parent id exists, window spans cover
// stage spans, and store replay reproduces the live run's span tree.
#include "ccg/obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ccg/analytics/service.hpp"
#include "ccg/obs/export.hpp"
#include "ccg/obs/span.hpp"
#include "ccg/parallel/parallel.hpp"
#include "ccg/store/store.hpp"
#include "ccg/workload/driver.hpp"
#include "ccg/workload/presets.hpp"

namespace ccg {
namespace {

namespace fs = std::filesystem;

/// Every test owns the global ring: enable a fresh one on entry, disable on
/// exit so suites that expect tracing off (the default) are unaffected.
class ObsTraceRingTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::TraceRing::global().enable(kCapacity); }
  void TearDown() override { obs::TraceRing::global().disable(); }
  static constexpr std::size_t kCapacity = 8;
};

TEST(ObsTraceContext, DefaultIsInactive) {
  EXPECT_FALSE(obs::current_trace().active());
  EXPECT_EQ(obs::current_trace().trace_id, 0u);
}

TEST(ObsTraceContext, ScopeInstallsAndRestores) {
  {
    obs::TraceScope outer({42, 7});
    EXPECT_EQ(obs::current_trace().trace_id, 42u);
    EXPECT_EQ(obs::current_trace().span_id, 7u);
    {
      obs::TraceScope inner({43, 9});
      EXPECT_EQ(obs::current_trace().trace_id, 43u);
    }
    EXPECT_EQ(obs::current_trace().trace_id, 42u);
    EXPECT_EQ(obs::current_trace().span_id, 7u);
  }
  EXPECT_FALSE(obs::current_trace().active());
}

TEST(ObsTraceContext, WindowTraceIdIsDeterministicAndNonZero) {
  EXPECT_EQ(obs::window_trace_id(60), obs::window_trace_id(60));
  EXPECT_NE(obs::window_trace_id(60), obs::window_trace_id(120));
  for (const std::int64_t m : {std::int64_t{0}, std::int64_t{-1},
                               std::int64_t{1} << 40}) {
    EXPECT_NE(obs::window_trace_id(m), 0u) << m;
  }
}

TEST(ObsTraceContext, SpanIdsAreUniqueAcrossThreads) {
  constexpr int kThreads = 4, kPerThread = 500;
  std::vector<std::vector<std::uint64_t>> ids(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ids, t] {
      for (int i = 0; i < kPerThread; ++i) ids[t].push_back(obs::next_span_id());
    });
  }
  for (auto& th : threads) th.join();
  std::set<std::uint64_t> unique;
  for (const auto& v : ids) unique.insert(v.begin(), v.end());
  EXPECT_EQ(unique.size(), static_cast<std::size_t>(kThreads * kPerThread));
}

TEST_F(ObsTraceRingTest, KeepsNewestEventsOldestFirstOnWrap) {
  for (std::uint64_t i = 0; i < kCapacity + 5; ++i) {
    obs::TraceRing::global().push({.name = "e" + std::to_string(i),
                                   .start_ns = i});
  }
  const auto events = obs::TraceRing::global().events();
  ASSERT_EQ(events.size(), kCapacity);
  EXPECT_EQ(obs::TraceRing::global().dropped(), 5u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].start_ns, 5 + i) << "oldest-first order";
  }
}

TEST_F(ObsTraceRingTest, ConcurrentWritersNeverLoseMoreThanCapacity) {
  constexpr int kThreads = 4, kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        obs::TraceRing::global().push({.name = "c"});
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(obs::TraceRing::global().events().size(), kCapacity);
  EXPECT_EQ(obs::TraceRing::global().dropped(),
            static_cast<std::size_t>(kThreads * kPerThread) - kCapacity);
}

TEST_F(ObsTraceRingTest, ScopedSpansFormATreeUnderTheAmbientTrace) {
  obs::Histogram& h = obs::span_histogram("ccg.test.tree");
  obs::TraceScope trace({obs::window_trace_id(0), 0});
  {
    obs::ScopedSpan outer(h, "outer");
    obs::ScopedSpan inner(h, "inner");
  }
  const auto events = obs::TraceRing::global().events();
  ASSERT_EQ(events.size(), 2u);
  // Spans close inside-out.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[0].trace_id, obs::window_trace_id(0));
  EXPECT_EQ(events[1].trace_id, obs::window_trace_id(0));
  EXPECT_EQ(events[0].parent_id, events[1].span_id);
  EXPECT_EQ(events[1].parent_id, 0u) << "outer is the trace root";
  EXPECT_NE(events[0].span_id, events[1].span_id);
}

TEST(ObsTraceRing, DisabledSpansRecordNothing) {
  ASSERT_FALSE(obs::TraceRing::global().enabled());
  obs::Histogram& h = obs::span_histogram("ccg.test.disabled");
  const std::uint64_t before = h.count();
  { obs::ScopedSpan span(h, "off"); }
  EXPECT_EQ(h.count(), before + 1) << "histogram still records";
  EXPECT_TRUE(obs::TraceRing::global().events().empty());
}

TEST_F(ObsTraceRingTest, PoolJobsInheritTraceAndCarryTheirTag) {
  obs::TraceScope trace({obs::window_trace_id(5), 0});
  parallel::ScopedJobTag tag("tracetest");
  std::vector<int> out(64, 0);
  parallel::parallel_for(out.size(), 8, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) out[i] = 1;
  });
  EXPECT_EQ(std::count(out.begin(), out.end(), 1),
            static_cast<std::ptrdiff_t>(out.size()));

  // On a single hardware thread the pool runs inline and records neither
  // the job span nor the per-tag histogram — attribution is a pool concern.
  if (parallel::thread_count() <= 1) return;
  const auto events = obs::TraceRing::global().events();
  const auto job = std::find_if(events.begin(), events.end(), [](const auto& e) {
    return e.name == "ccg.parallel.job.tracetest";
  });
  ASSERT_NE(job, events.end());
  EXPECT_EQ(job->trace_id, obs::window_trace_id(5));
  EXPECT_NE(job->span_id, 0u);
  EXPECT_GT(obs::span_histogram("ccg.parallel.job.tracetest").count(), 0u);
}

// --- exporter goldens -------------------------------------------------------

TEST(ObsTraceExport, EmptyRingIsValidJson) {
  EXPECT_EQ(obs::to_trace_json({}, 0),
            "{\n"
            "  \"displayTimeUnit\": \"ms\",\n"
            "  \"otherData\": {\"dropped\": 0},\n"
            "  \"traceEvents\": []\n"
            "}\n");
}

TEST(ObsTraceExport, GoldenEventFormatting) {
  std::vector<obs::TraceEvent> events;
  events.push_back({.name = "win\"dow",
                    .start_ns = 1500,
                    .duration_ns = 2000,
                    .thread_hash = 0xDEAD,
                    .trace_id = 0xA,
                    .span_id = 0x1,
                    .parent_id = 0});
  events.push_back({.name = "stage",
                    .start_ns = 123456789,
                    .duration_ns = 250,
                    .thread_hash = 0xBEEF,
                    .trace_id = 0xA,
                    .span_id = 0x2,
                    .parent_id = 0x1});
  EXPECT_EQ(obs::to_trace_json(events, 3),
            "{\n"
            "  \"displayTimeUnit\": \"ms\",\n"
            "  \"otherData\": {\"dropped\": 3},\n"
            "  \"traceEvents\": [\n"
            "    {\"name\": \"win\\\"dow\", \"cat\": \"ccg\", \"ph\": \"X\", "
            "\"ts\": 1.500, \"dur\": 2.000, \"pid\": 1, \"tid\": 1, "
            "\"args\": {\"trace\": \"0xa\", \"span\": \"0x1\"}},\n"
            "    {\"name\": \"stage\", \"cat\": \"ccg\", \"ph\": \"X\", "
            "\"ts\": 123456.789, \"dur\": 0.250, \"pid\": 1, \"tid\": 2, "
            "\"args\": {\"trace\": \"0xa\", \"span\": \"0x2\", "
            "\"parent\": \"0x1\"}}\n"
            "  ]\n"
            "}\n");
}

// --- end-to-end structure ---------------------------------------------------

/// Buffered telemetry stream (same shape as test_store's CaptureSink).
struct CaptureSink : TelemetrySink {
  std::vector<std::pair<MinuteBucket, std::vector<ConnectionSummary>>> batches;
  void on_batch(MinuteBucket time,
                const std::vector<ConnectionSummary>& batch) override {
    batches.emplace_back(time, batch);
  }
  void replay_into(TelemetrySink& sink) const {
    for (const auto& [time, batch] : batches) sink.on_batch(time, batch);
  }
};

struct Workload {
  CaptureSink stream;
  std::unordered_set<IpAddr> monitored;
};

Workload simulate_minutes(std::int64_t minutes, std::uint64_t seed) {
  Workload w;
  Cluster cluster(presets::tiny(), seed);
  TelemetryHub hub(ProviderProfile::azure(), seed);
  SimulationDriver driver(cluster, hub);
  hub.set_sink(&w.stream);
  driver.run(TimeWindow::minutes(0, minutes));
  const auto ips = cluster.monitored_ips();
  w.monitored = {ips.begin(), ips.end()};
  return w;
}

constexpr std::int64_t kWindowMinutes = 5;

AnalyticsServiceOptions service_options() {
  return {.graph = {.facet = GraphFacet::kIp,
                    .window_minutes = kWindowMinutes,
                    .collapse_threshold = 0.001},
          .training_windows = 2};
}

/// name -> multiset of (parent name) edges, ignoring ids: the structural
/// fingerprint of a window's span tree that live and replayed runs share.
std::multiset<std::pair<std::string, std::string>> tree_shape(
    const std::vector<obs::TraceEvent>& events, std::uint64_t trace_id) {
  std::map<std::uint64_t, std::string> names;
  for (const auto& e : events) {
    if (e.trace_id == trace_id) names[e.span_id] = e.name;
  }
  std::multiset<std::pair<std::string, std::string>> shape;
  for (const auto& e : events) {
    if (e.trace_id != trace_id) continue;
    const auto parent = names.find(e.parent_id);
    shape.emplace(e.name, parent == names.end() ? "" : parent->second);
  }
  return shape;
}

TEST(ObsTraceEndToEnd, WindowSpansCoverStagesAndParentsExist) {
  obs::TraceRing::global().enable(1 << 14);
  const Workload w = simulate_minutes(3 * kWindowMinutes, 11);

  std::size_t reports = 0;
  AnalyticsService service(service_options(), w.monitored,
                           [&](const WindowReport&) { ++reports; });
  obs::TraceRing::global().clear();
  w.stream.replay_into(service);
  service.flush();
  const auto events = obs::TraceRing::global().events();
  obs::TraceRing::global().disable();
  ASSERT_EQ(obs::TraceRing::global().dropped(), 0u) << "ring sized for the run";
  ASSERT_GE(reports, 3u);

  // Every parent id resolves to a span in the same trace.
  std::map<std::uint64_t, const obs::TraceEvent*> by_span;
  for (const auto& e : events) {
    EXPECT_NE(e.span_id, 0u);
    by_span[e.span_id] = &e;
  }
  std::size_t window_spans = 0;
  for (const auto& e : events) {
    if (e.parent_id == 0) continue;
    const auto parent = by_span.find(e.parent_id);
    ASSERT_NE(parent, by_span.end()) << e.name << " has a dangling parent";
    EXPECT_EQ(parent->second->trace_id, e.trace_id) << e.name;
  }
  // Each window root covers its stage spans in time and parents them.
  for (const auto& e : events) {
    if (e.name != "ccg.analytics.window") continue;
    ++window_spans;
    for (const auto& stage : events) {
      if (stage.parent_id != e.span_id) continue;
      EXPECT_GE(stage.start_ns, e.start_ns) << stage.name;
      EXPECT_LE(stage.start_ns + stage.duration_ns, e.start_ns + e.duration_ns)
          << stage.name;
    }
  }
  EXPECT_EQ(window_spans, reports) << "one root span per reported window";
}

TEST(ObsTraceEndToEnd, ReplayFromStoreReproducesTheSpanTree) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / "ccg_trace_replay_store";
  fs::remove_all(dir);
  fs::create_directories(dir);

  obs::TraceRing::global().enable(1 << 14);
  const Workload w = simulate_minutes(4 * kWindowMinutes, 23);

  // Live run, appending each window to the store.
  auto writer = store::StoreWriter::open(dir.string(), {});
  ASSERT_TRUE(writer.has_value());
  AnalyticsService live(service_options(), w.monitored,
                        [](const WindowReport&) {});
  live.set_store(&*writer);
  obs::TraceRing::global().clear();
  w.stream.replay_into(live);
  live.flush();
  writer->close();
  const auto live_events = obs::TraceRing::global().events();

  // Replay run from the store, fresh service, fresh ring.
  auto reader = store::StoreReader::open(dir.string());
  ASSERT_TRUE(reader.has_value());
  AnalyticsService replayed(service_options(), w.monitored,
                            [](const WindowReport&) {});
  obs::TraceRing::global().clear();
  const std::size_t n = replayed.replay(*reader);
  const auto replay_events = obs::TraceRing::global().events();
  obs::TraceRing::global().disable();
  ASSERT_GE(n, 4u);

  // Same deterministic window trace ids on both sides...
  std::set<std::uint64_t> live_traces, replay_traces;
  for (const auto& e : live_events) {
    if (e.name == "ccg.analytics.window") live_traces.insert(e.trace_id);
  }
  for (const auto& e : replay_events) {
    if (e.name == "ccg.analytics.window") replay_traces.insert(e.trace_id);
  }
  ASSERT_EQ(live_traces, replay_traces);

  // ...and per window, the same parent/child name structure for everything
  // under the analytics root (the live run additionally contains telemetry
  // and store-append spans replay doesn't execute).
  for (const std::uint64_t trace : replay_traces) {
    const auto replay_shape = tree_shape(replay_events, trace);
    auto live_shape = tree_shape(live_events, trace);
    for (const auto& edge : replay_shape) {
      const auto it = live_shape.find(edge);
      ASSERT_NE(it, live_shape.end())
          << "replay span '" << edge.first << "' under '" << edge.second
          << "' missing from live trace";
      live_shape.erase(it);
    }
  }
}

}  // namespace
}  // namespace ccg

#include "ccg/analytics/pipeline.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "ccg/analytics/cogs.hpp"
#include "ccg/analytics/queue.hpp"
#include "ccg/common/rng.hpp"
#include "ccg/store/format.hpp"

namespace ccg {
namespace {

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue<int> q(4);
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
}

TEST(BoundedQueue, CloseDrainsThenEnds) {
  BoundedQueue<int> q(4);
  q.push(7);
  q.close();
  EXPECT_FALSE(q.push(8));
  EXPECT_EQ(q.pop(), 7);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, BackpressureBlocksProducer) {
  BoundedQueue<int> q(2);
  q.push(1);
  q.push(2);
  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    q.push(3);
    third_pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_pushed.load());
  EXPECT_EQ(q.pop(), 1);
  producer.join();
  EXPECT_TRUE(third_pushed.load());
}

TEST(BoundedQueue, ConcurrentProducersConsumers) {
  BoundedQueue<int> q(16);
  constexpr int kPerProducer = 2000;
  std::atomic<long long> sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < 3; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) q.push(p * kPerProducer + i);
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.pop()) sum += *v;
    });
  }
  for (auto& t : threads) t.join();
  q.close();
  for (auto& t : consumers) t.join();
  const long long n = 3LL * kPerProducer;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

// --- ShardedGraphPipeline ----------------------------------------------------

std::vector<ConnectionSummary> random_minute(std::int64_t minute, std::size_t n,
                                             Rng& rng) {
  std::vector<ConnectionSummary> batch;
  for (std::size_t i = 0; i < n; ++i) {
    const IpAddr local(0x0A000001 + static_cast<std::uint32_t>(rng.uniform(32)));
    IpAddr remote(0x0A000001 + static_cast<std::uint32_t>(rng.uniform(32)));
    if (remote == local) remote = IpAddr(remote.bits() + 1);
    batch.push_back(ConnectionSummary{
        .time = MinuteBucket(minute),
        .flow = FlowKey{.local_ip = local,
                        .local_port = static_cast<std::uint16_t>(33000 + rng.uniform(1000)),
                        .remote_ip = remote,
                        .remote_port = 443,
                        .protocol = Protocol::kTcp},
        .counters = TrafficCounters{.packets_sent = 1 + rng.uniform(10),
                                    .packets_rcvd = 1,
                                    .bytes_sent = 100 + rng.uniform(10000),
                                    .bytes_rcvd = 50}});
  }
  return batch;
}

std::unordered_set<IpAddr> all_monitored() {
  std::unordered_set<IpAddr> monitored;
  for (std::uint32_t i = 0; i < 64; ++i) monitored.insert(IpAddr(0x0A000001 + i));
  return monitored;
}

TEST(ShardedGraphPipeline, MatchesSingleThreadedBuilder) {
  Rng rng(99);
  std::vector<std::vector<ConnectionSummary>> minutes;
  for (std::int64_t m = 0; m < 120; ++m) {
    minutes.push_back(random_minute(m, 200, rng));
  }

  const GraphBuildConfig config{.facet = GraphFacet::kIp, .window_minutes = 60};
  GraphBuilder reference(config, all_monitored());
  ShardedGraphPipeline pipeline({.shards = 4, .graph = config}, all_monitored());

  for (std::int64_t m = 0; m < 120; ++m) {
    reference.on_batch(MinuteBucket(m), minutes[static_cast<std::size_t>(m)]);
    pipeline.on_batch(MinuteBucket(m), minutes[static_cast<std::size_t>(m)]);
  }
  reference.flush();
  const auto expected = reference.take_graphs();
  const auto actual = pipeline.finish();

  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t w = 0; w < actual.size(); ++w) {
    EXPECT_EQ(actual[w].window(), expected[w].window());
    // Byte-level equality: serializing both graphs as keyframes compares
    // every node key, monitored flag, collapsed membership, edge endpoint,
    // port hint and traffic counter — the full determinism contract, not
    // just the aggregate shape.
    EXPECT_EQ(store::encode_frame(store::FrameKind::kKeyframe, CommGraph(),
                                  actual[w]),
              store::encode_frame(store::FrameKind::kKeyframe, CommGraph(),
                                  expected[w]))
        << "window " << w << " differs from single-threaded build";
  }
  EXPECT_EQ(pipeline.stats().records, 120u * 200u);
}

TEST(ShardedGraphPipeline, CollapseAppliedAfterMerge) {
  GraphBuildConfig config{.facet = GraphFacet::kIp,
                          .window_minutes = 60,
                          .collapse_threshold = 0.01};
  ShardedGraphPipeline pipeline({.shards = 3, .graph = config},
                                {IpAddr(0x0A000001)});
  std::vector<ConnectionSummary> batch;
  // Heavy edge (60 concurrent flows) + many tiny remotes spread across
  // shards; tiny nodes must fall below the byte, packet AND
  // connection-minute thresholds to collapse.
  for (std::uint16_t k = 0; k < 60; ++k) {
    batch.push_back(ConnectionSummary{
        .time = MinuteBucket(0),
        .flow = FlowKey{.local_ip = IpAddr(0x0A000001),
                        .local_port = static_cast<std::uint16_t>(40000 + k),
                        .remote_ip = IpAddr(0x0B000001), .remote_port = 443,
                        .protocol = Protocol::kTcp},
        .counters = TrafficCounters{.packets_sent = 200, .bytes_sent = 10'000'000}});
  }
  for (std::uint32_t i = 0; i < 60; ++i) {
    batch.push_back(ConnectionSummary{
        .time = MinuteBucket(0),
        .flow = FlowKey{.local_ip = IpAddr(0x0A000001), .local_port = 39000,
                        .remote_ip = IpAddr(0x64000000 + i), .remote_port = 443,
                        .protocol = Protocol::kTcp},
        .counters = TrafficCounters{.packets_sent = 1, .bytes_sent = 10}});
  }
  pipeline.on_batch(MinuteBucket(0), batch);
  const auto graphs = pipeline.finish();
  ASSERT_EQ(graphs.size(), 1u);
  // monitored + heavy remote + <other>.
  EXPECT_EQ(graphs[0].node_count(), 3u);
  const auto other = graphs[0].find_node(NodeKey::collapsed());
  ASSERT_TRUE(other.has_value());
  EXPECT_EQ(graphs[0].node_stats(*other).collapsed_members, 60u);
}

TEST(ShardedGraphPipeline, StatsReadableWhileStreaming) {
  // The threading contract allows stats() from any thread mid-run: the
  // counters are atomics, so a concurrent reader sees monotone totals
  // (and TSan stays quiet — this was a data race before the obs refactor).
  Rng rng(5);
  ShardedGraphPipeline pipeline(
      {.shards = 2, .graph = {.facet = GraphFacet::kIp, .window_minutes = 60}},
      all_monitored());
  std::atomic<bool> done{false};
  std::thread reader([&] {
    std::uint64_t last = 0;
    while (!done.load()) {
      const PipelineStats s = pipeline.stats();
      EXPECT_GE(s.records, last);
      last = s.records;
    }
  });
  for (std::int64_t m = 0; m < 30; ++m) {
    pipeline.on_batch(MinuteBucket(m), random_minute(m, 200, rng));
  }
  done = true;
  reader.join();
  pipeline.finish();
  EXPECT_EQ(pipeline.stats().records, 30u * 200u);
  EXPECT_EQ(pipeline.stats().batches, 30u);
}

TEST(ShardedGraphPipeline, SingleShardWorks) {
  Rng rng(7);
  ShardedGraphPipeline pipeline(
      {.shards = 1, .graph = {.facet = GraphFacet::kIp, .window_minutes = 60}},
      all_monitored());
  pipeline.on_batch(MinuteBucket(0), random_minute(0, 100, rng));
  const auto graphs = pipeline.finish();
  ASSERT_EQ(graphs.size(), 1u);
  EXPECT_GT(graphs[0].edge_count(), 0u);
  EXPECT_GT(pipeline.stats().records_per_second(), 0.0);
}

TEST(CogsReport, ComputesSurcharge) {
  TelemetryLedger ledger;
  ledger.records = 60'000;
  ledger.intervals = 60;  // 1000 records/min
  const auto report = cogs_report(ledger, 1000, 50'000.0);
  EXPECT_EQ(report.monitored_vms, 1000u);
  EXPECT_NEAR(report.records_per_minute, 1000.0, 1e-9);
  // 1000/min = 16.7/s << 50k/s: one machine is plenty.
  EXPECT_LE(report.analytics_vms_needed, 1.0);
  EXPECT_TRUE(report.within_target);
  EXPECT_GT(report.total_dollars_per_vm_hour, 0.0);
  EXPECT_NE(report.summary().find("PASS"), std::string::npos);
}

TEST(CogsReport, FlagsUnderprovisionedAnalytics) {
  TelemetryLedger ledger;
  ledger.records = 2'300'000ull * 60;  // KQuery-scale: 2.3M/min for an hour
  ledger.intervals = 60;
  // A slow analytics machine: 1k records/s -> needs ~38 machines.
  const auto report = cogs_report(ledger, 10, 1000.0);
  EXPECT_GT(report.analytics_vms_needed, 30.0);
  EXPECT_FALSE(report.within_target);
}

}  // namespace
}  // namespace ccg

#include "ccg/summarize/temporal.hpp"

#include <gtest/gtest.h>

#include "ccg/common/expect.hpp"

namespace ccg {
namespace {

CommGraph hour_graph(std::int64_t hour, std::uint32_t extra_nodes = 0,
                     std::uint64_t bytes = 1000) {
  CommGraph g(TimeWindow::hour(hour));
  const NodeId a = g.add_node(NodeKey::for_ip(IpAddr(1u)));
  const NodeId b = g.add_node(NodeKey::for_ip(IpAddr(2u)));
  const NodeId c = g.add_node(NodeKey::for_ip(IpAddr(3u)));
  g.add_edge_volume(a, b, bytes, 0, 1, 0, 1, 1);
  g.add_edge_volume(b, c, bytes, 0, 1, 0, 1, 1);
  for (std::uint32_t i = 0; i < extra_nodes; ++i) {
    const NodeId n = g.add_node(NodeKey::for_ip(IpAddr(100u + i)));
    g.add_edge_volume(a, n, bytes / 10, 0, 1, 0, 1, 1);
  }
  return g;
}

TEST(AnalyzeSeries, StableSeriesScoresHigh) {
  std::vector<CommGraph> series{hour_graph(0), hour_graph(1), hour_graph(2)};
  const auto stability = analyze_series(series);
  EXPECT_EQ(stability.transitions.size(), 2u);
  EXPECT_DOUBLE_EQ(stability.mean_edge_jaccard, 1.0);
  EXPECT_DOUBLE_EQ(stability.min_edge_jaccard, 1.0);
  EXPECT_DOUBLE_EQ(stability.mean_byte_overlap, 1.0);
  EXPECT_EQ(stability.transitions[0].from, TimeWindow::hour(0));
  EXPECT_EQ(stability.transitions[0].to, TimeWindow::hour(1));
}

TEST(AnalyzeSeries, DriftLowersJaccard) {
  std::vector<CommGraph> series{hour_graph(0), hour_graph(1, 5)};
  const auto stability = analyze_series(series);
  EXPECT_LT(stability.mean_edge_jaccard, 1.0);
  EXPECT_EQ(stability.transitions[0].edges_added, 5u);
  EXPECT_LT(stability.transitions[0].node_jaccard, 1.0);
}

TEST(AnalyzeSeries, VolumeChangesCounted) {
  std::vector<CommGraph> series{hour_graph(0, 0, 1000), hour_graph(1, 0, 100'000)};
  const auto stability = analyze_series(series, 4.0);
  EXPECT_EQ(stability.transitions[0].edges_changed, 2u);
  EXPECT_DOUBLE_EQ(stability.transitions[0].edge_jaccard, 1.0);  // same structure
}

TEST(AnalyzeSeries, RequiresTwoGraphs) {
  std::vector<CommGraph> one{hour_graph(0)};
  EXPECT_THROW(analyze_series(one), ContractViolation);
}

TEST(AsciiAdjacency, RendersGridOfExpectedShape) {
  const auto g = hour_graph(0, 20);
  const std::string art = ascii_adjacency(g, 8);
  std::size_t rows = 0;
  for (const char ch : art) rows += ch == '\n';
  EXPECT_EQ(rows, 8u);
  // Something is non-blank.
  EXPECT_NE(art.find_first_not_of(" \n"), std::string::npos);
}

TEST(AsciiAdjacency, SmallerGraphThanGrid) {
  const auto g = hour_graph(0);
  const std::string art = ascii_adjacency(g, 32);  // only 3 nodes
  std::size_t rows = 0;
  for (const char ch : art) rows += ch == '\n';
  EXPECT_EQ(rows, 3u);
}

TEST(AsciiAdjacency, EmptyGraph) {
  EXPECT_EQ(ascii_adjacency(CommGraph{}), "(empty graph)\n");
}

TEST(AsciiAdjacency, ConsecutiveHoursAlign) {
  // Same node set -> same rendering (stable key ordering).
  const auto h0 = hour_graph(0);
  const auto h1 = hour_graph(1);
  EXPECT_EQ(ascii_adjacency(h0, 3), ascii_adjacency(h1, 3));
}

TEST(SeriesStability, SummaryRenders) {
  std::vector<CommGraph> series{hour_graph(0), hour_graph(1)};
  EXPECT_NE(analyze_series(series).summary().find("edge-jaccard"),
            std::string::npos);
}

}  // namespace
}  // namespace ccg

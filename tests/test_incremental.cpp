// Incremental analytics engine: dirty-set rules, the exactness contract
// (incremental segmentation byte-identical to auto_segment, across thread
// counts and SIMD tiers), the LSH carry path, every fallback-to-full
// trigger, bounded-divergence refine/PCA modes, and in-place CSR patching.
#include "ccg/incremental/engine.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "ccg/graph/builder.hpp"
#include "ccg/graph/csr.hpp"
#include "ccg/graph/delta.hpp"
#include "ccg/incremental/dirty.hpp"
#include "ccg/incremental/pca.hpp"
#include "ccg/obs/metrics.hpp"
#include "ccg/parallel/parallel.hpp"
#include "ccg/segmentation/auto_segment.hpp"
#include "ccg/simd/simd.hpp"
#include "ccg/workload/driver.hpp"
#include "ccg/workload/presets.hpp"

namespace ccg {
namespace {

using incremental::ChurnStats;
using incremental::DirtySet;
using incremental::IncrementalEngine;
using incremental::IncrementalOptions;

// --- synthetic low-churn window sequences -----------------------------------
//
// An editable graph spec: windows are rebuilt from it with a stable node
// insertion order, so consecutive windows differ exactly by the edits made
// between builds — the controlled-churn input the engine is for. (The
// simulated workloads below exercise realism; this exercises precision.)

struct EdgeSpec {
  std::uint32_t a, b;
  std::uint64_t bytes_ab, bytes_ba;
  std::int32_t port;
};

struct GraphSpec {
  std::size_t nodes = 0;
  std::uint32_t first_ip = 1;  // key of node 0; node i keys first_ip + i
  std::vector<EdgeSpec> edges;

  CommGraph build(int step) const {
    CommGraph g(TimeWindow::minutes(step * 5, (step + 1) * 5));
    for (std::size_t i = 0; i < nodes; ++i) {
      const NodeId id = g.add_node(
          NodeKey::for_ip(IpAddr(first_ip + static_cast<std::uint32_t>(i))));
      g.set_monitored(id, true);
    }
    for (const EdgeSpec& e : edges) {
      // Symmetric client-minutes keep the direction role stable (kMixed),
      // so byte edits stay in the weighted tier.
      g.add_edge_volume(e.a, e.b, e.bytes_ab, e.bytes_ba, e.bytes_ab / 100 + 1,
                        e.bytes_ba / 100 + 1, 10, 5, 4, 4, e.port);
    }
    return g;
  }
};

/// Four 10-node communities (dense intra-edges) plus a few bridges —
/// enough structure that Louvain has something real to find.
GraphSpec community_spec() {
  GraphSpec spec;
  spec.nodes = 40;
  for (std::uint32_t c = 0; c < 4; ++c) {
    const std::uint32_t base = c * 10;
    for (std::uint32_t i = 0; i < 10; ++i) {
      for (std::uint32_t j = i + 1; j < 10; j += 2 + (i % 3)) {
        spec.edges.push_back({base + i, base + j, 5000 + 100ull * (i + j), 900,
                              static_cast<std::int32_t>(8000 + c)});
      }
    }
  }
  spec.edges.push_back({3, 13, 700, 700, 443});
  spec.edges.push_back({17, 25, 650, 650, 443});
  spec.edges.push_back({29, 38, 600, 600, 443});
  return spec;
}

/// A deterministic low-churn evolution: byte drifts every window, a
/// topology tweak every second window, a node arrival at step 3.
std::vector<CommGraph> low_churn_windows(int count) {
  GraphSpec spec = community_spec();
  std::vector<CommGraph> out;
  for (int step = 0; step < count; ++step) {
    if (step > 0) {
      for (std::size_t k = step % 7; k < spec.edges.size(); k += 9)
        spec.edges[k].bytes_ab += 331 * static_cast<std::uint64_t>(step);
      if (step % 2 == 0) {
        spec.edges.push_back({static_cast<std::uint32_t>(step % 10),
                              static_cast<std::uint32_t>(10 + step % 10), 800,
                              80, 443});
      }
      if (step == 3) {
        const auto fresh = static_cast<std::uint32_t>(spec.nodes++);
        spec.edges.push_back({2, fresh, 1200, 120, 9000});
        spec.edges.push_back({5, fresh, 1100, 110, 9000});
      }
    }
    out.push_back(spec.build(step));
  }
  return out;
}

/// Simulated per-window graphs — realistic churn on top of the synthetic
/// precision sequences.
std::vector<CommGraph> workload_windows(std::int64_t minutes,
                                        std::uint64_t seed) {
  Cluster cluster(presets::tiny(), seed);
  TelemetryHub hub(ProviderProfile::azure(), seed);
  SimulationDriver driver(cluster, hub);
  const auto ips = cluster.monitored_ips();
  GraphBuilder builder(
      {.facet = GraphFacet::kIp, .window_minutes = 5, .collapse_threshold = 0.001},
      {ips.begin(), ips.end()});
  hub.set_sink(&builder);
  driver.run(TimeWindow::minutes(0, minutes));
  builder.flush();
  return builder.take_graphs();
}

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// --- dirty-set rules --------------------------------------------------------

TEST(DirtySet, KeyframeMarksEverythingNew) {
  const CommGraph g = community_spec().build(0);
  const DirtySet dirty = incremental::compute_dirty(
      CommGraph{}, make_patch(CommGraph{}, g), g);
  EXPECT_EQ(dirty.structural.size(), g.node_count());
  EXPECT_EQ(dirty.weighted.size(), g.node_count());
  EXPECT_FALSE(dirty.identity_map);
  EXPECT_EQ(dirty.stats.nodes_added, g.node_count());
  EXPECT_EQ(dirty.stats.edges_added, g.edge_count());
  EXPECT_DOUBLE_EQ(dirty.stats.node_churn(), 1.0);
}

TEST(DirtySet, ByteOnlyChurnIsWeightedNotStructural) {
  GraphSpec spec = community_spec();
  const CommGraph before = spec.build(0);
  const EdgeSpec touched = spec.edges[4];
  spec.edges[4].bytes_ab += 999;
  const CommGraph after = spec.build(1);

  const DirtySet dirty =
      incremental::compute_dirty(before, make_patch(before, after), after);
  EXPECT_TRUE(dirty.identity_map);
  EXPECT_TRUE(dirty.structural.empty())
      << "byte drift must not invalidate MinHash rows";
  EXPECT_EQ(dirty.weighted.size(), 2u);
  EXPECT_EQ(dirty.weighted[0], static_cast<NodeId>(touched.a));
  EXPECT_EQ(dirty.weighted[1], static_cast<NodeId>(touched.b));
  EXPECT_EQ(dirty.stats.edges_restated, 1u);
  EXPECT_EQ(dirty.stats.nodes_touched, 0u);
}

TEST(DirtySet, PortChangeIsStructural) {
  GraphSpec spec = community_spec();
  const CommGraph before = spec.build(0);
  const EdgeSpec touched = spec.edges[4];
  spec.edges[4].port = 31337;
  const CommGraph after = spec.build(1);

  const DirtySet dirty =
      incremental::compute_dirty(before, make_patch(before, after), after);
  ASSERT_EQ(dirty.structural.size(), 2u);
  EXPECT_EQ(dirty.structural[0], static_cast<NodeId>(touched.a));
  EXPECT_EQ(dirty.structural[1], static_cast<NodeId>(touched.b));
}

TEST(DirtySet, AddedEdgeDirtiesItsEndpoints) {
  GraphSpec spec = community_spec();
  const CommGraph before = spec.build(0);
  spec.edges.push_back({0, 39, 500, 50, 443});
  const CommGraph after = spec.build(1);

  const DirtySet dirty =
      incremental::compute_dirty(before, make_patch(before, after), after);
  ASSERT_EQ(dirty.structural.size(), 2u);
  EXPECT_EQ(dirty.structural[0], 0);
  EXPECT_EQ(dirty.structural[1], 39);
  EXPECT_EQ(dirty.stats.edges_added, 1u);
  // The frontier adds the endpoints' neighbors (whose pair scores can
  // move even though their own rows are clean).
  EXPECT_GT(dirty.frontier.size(), dirty.structural.size());
}

TEST(DirtySet, RemovedNodeDirtiesItsNeighborsAndRenumbers) {
  GraphSpec spec = community_spec();
  const CommGraph before = spec.build(0);
  // Drop node 0 by rebuilding without it: the survivors keep their keys
  // (first_ip skips the removed one) while every NodeId shifts down.
  GraphSpec shrunk;
  shrunk.nodes = spec.nodes - 1;
  shrunk.first_ip = 2;
  for (const EdgeSpec& e : spec.edges) {
    if (e.a == 0 || e.b == 0) continue;
    shrunk.edges.push_back({e.a - 1, e.b - 1, e.bytes_ab, e.bytes_ba, e.port});
  }
  const CommGraph after = shrunk.build(1);

  const DirtySet dirty =
      incremental::compute_dirty(before, make_patch(before, after), after);
  EXPECT_FALSE(dirty.identity_map);
  EXPECT_EQ(dirty.stats.nodes_removed, 1u);
  EXPECT_EQ(dirty.old_to_new[0], -1);
  // Every surviving neighbor of the removed node lost a CSR entry.
  for (const EdgeSpec& e : spec.edges) {
    if (e.a != 0 && e.b != 0) continue;
    const std::uint32_t other = (e.a == 0 ? e.b : e.a) - 1;
    EXPECT_TRUE(dirty.structural_flag[other])
        << "neighbor " << other << " of removed node must be dirty";
  }
}

TEST(DirtySet, PatchChurnMatchesComputeDirty) {
  const auto windows = low_churn_windows(5);
  for (std::size_t i = 1; i < windows.size(); ++i) {
    const GraphPatch patch = make_patch(windows[i - 1], windows[i]);
    const ChurnStats a = incremental::patch_churn(windows[i - 1], patch);
    const ChurnStats b =
        incremental::compute_dirty(windows[i - 1], patch, windows[i]).stats;
    EXPECT_EQ(a.nodes_touched, b.nodes_touched);
    EXPECT_EQ(a.edges_touched, b.edges_touched);
    EXPECT_EQ(a.nodes_added, b.nodes_added);
    EXPECT_EQ(a.edges_restated, b.edges_restated);
  }
}

// --- exactness: incremental == auto_segment, bit for bit --------------------

void expect_matches_full(const IncrementalEngine& engine,
                         const CommGraph& window, SegmentationMethod method,
                         const SegmentationOptions& sopts, std::size_t i,
                         const char* config) {
  const auto& r = engine.last();
  EXPECT_TRUE(r.verified) << config << " window " << i << ": "
                          << r.verify_error;
  const Segmentation full = auto_segment(window, method, sopts);
  EXPECT_EQ(r.segmentation.labels, full.labels) << config << " window " << i;
  EXPECT_EQ(r.segmentation.segment_count, full.segment_count);
  EXPECT_TRUE(same_bits(r.segmentation.objective_modularity,
                        full.objective_modularity))
      << config << " window " << i;
}

TEST(IncrementalEngine, ExactModeMatchesAutoSegmentOnLowChurnWindows) {
  const auto windows = low_churn_windows(8);
  const SegmentationOptions sopts;
  IncrementalOptions opts;
  opts.verify_against_full = true;
  IncrementalEngine engine(opts);

  std::size_t incremental_windows = 0, carried = 0;
  for (std::size_t i = 0; i < windows.size(); ++i) {
    engine.observe(windows[i]);
    expect_matches_full(engine, windows[i],
                        SegmentationMethod::kJaccardLouvain, sopts, i,
                        "exact");
    if (!engine.last().full_recompute) {
      ++incremental_windows;
      carried += engine.last().carried_pairs;
    }
  }
  // The point of the subsystem: most windows must actually take the
  // incremental path and carry previous scores.
  EXPECT_GE(incremental_windows, windows.size() - 1);
  EXPECT_GT(carried, 0u);
}

TEST(IncrementalEngine, ExactAcrossThreadCountsAndSimdTiers) {
  const auto windows = low_churn_windows(6);
  const SegmentationOptions sopts;
  for (const char* tier : {"scalar", "auto"}) {
    ASSERT_TRUE(simd::set_tier(tier));
    for (const int threads : {1, 2, 4}) {
      parallel::set_thread_count(threads);
      const std::string config = std::string(tier) + "/" +
                                 std::to_string(threads) + "t";
      IncrementalOptions opts;
      opts.verify_against_full = true;
      IncrementalEngine engine(opts);
      for (std::size_t i = 0; i < windows.size(); ++i) {
        engine.observe(windows[i]);
        expect_matches_full(engine, windows[i],
                            SegmentationMethod::kJaccardLouvain, sopts, i,
                            config.c_str());
      }
    }
  }
  parallel::set_thread_count(0);
  simd::set_tier("auto");
}

TEST(IncrementalEngine, ExactOnSimulatedWorkloadAllMethods) {
  const auto windows = workload_windows(60, 11);
  ASSERT_GE(windows.size(), 8u);
  for (const SegmentationMethod method :
       {SegmentationMethod::kJaccardLouvain,
        SegmentationMethod::kWeightedJaccardLouvain,
        SegmentationMethod::kConnectivityModularity,
        SegmentationMethod::kByteModularity}) {
    IncrementalOptions opts;
    opts.method = method;
    opts.verify_against_full = true;
    IncrementalEngine engine(opts);
    for (std::size_t i = 0; i < windows.size(); ++i) {
      engine.observe(windows[i]);
      expect_matches_full(engine, windows[i], method, SegmentationOptions{},
                          i, to_string(method).c_str());
    }
  }
}

TEST(IncrementalEngine, LshSchemeCarriesSignaturesExactly) {
  const auto windows = low_churn_windows(6);
  IncrementalOptions opts;
  opts.verify_against_full = true;
  opts.exact_pair_limit = 0;  // forces LSH banding at every size
  IncrementalEngine engine(opts);
  bool saw_partial_restamp = false;
  for (std::size_t i = 0; i < windows.size(); ++i) {
    engine.observe(windows[i]);
    const auto& r = engine.last();
    EXPECT_TRUE(r.verified) << "window " << i << ": " << r.verify_error;
    if (!r.full_recompute) {
      EXPECT_EQ(r.restamped, r.dirty_nodes);
      if (r.restamped < windows[i].node_count()) saw_partial_restamp = true;
    }
  }
  EXPECT_TRUE(saw_partial_restamp)
      << "every window re-stamped every signature — nothing was incremental";
}

// --- fallback triggers ------------------------------------------------------

TEST(IncrementalEngine, FallbackReasonsFirstChurnSchemeMethod) {
  {
    IncrementalEngine engine;
    engine.observe(community_spec().build(0));
    EXPECT_TRUE(engine.last().full_recompute);
    EXPECT_EQ(engine.last().full_reason, "first");
  }
  {
    // Two structurally unrelated graphs: churn above the threshold.
    IncrementalEngine engine;
    GraphSpec a = community_spec();
    engine.observe(a.build(0));
    GraphSpec b;
    b.nodes = 30;
    for (std::uint32_t i = 0; i + 1 < 30; ++i)
      b.edges.push_back({i, i + 1, 100, 10, 80});
    engine.observe(b.build(1));
    EXPECT_TRUE(engine.last().full_recompute);
    EXPECT_EQ(engine.last().full_reason, "churn");
  }
  {
    // One node arrival across the exact/LSH crossover: low churn, but the
    // candidate generator switches, so caches are invalid.
    IncrementalOptions opts;
    opts.verify_against_full = true;
    opts.exact_pair_limit = 40;
    IncrementalEngine engine(opts);
    GraphSpec spec = community_spec();  // exactly 40 nodes
    engine.observe(spec.build(0));
    EXPECT_EQ(engine.last().full_reason, "first");
    const auto fresh = static_cast<std::uint32_t>(spec.nodes++);
    spec.edges.push_back({0, fresh, 400, 40, 443});
    engine.observe(spec.build(1));
    EXPECT_TRUE(engine.last().full_recompute);
    EXPECT_EQ(engine.last().full_reason, "scheme");
    EXPECT_TRUE(engine.last().verified) << engine.last().verify_error;
  }
  {
    // SimRank has no incremental path.
    IncrementalOptions opts;
    opts.method = SegmentationMethod::kSimRank;
    IncrementalEngine engine(opts);
    const auto windows = low_churn_windows(2);
    engine.observe(windows[0]);
    engine.observe(windows[1]);
    EXPECT_TRUE(engine.last().full_recompute);
    EXPECT_EQ(engine.last().full_reason, "method");
  }
}

TEST(IncrementalEngine, IdenticalWindowReusesLabels) {
  const CommGraph g = community_spec().build(0);
  IncrementalOptions opts;
  opts.verify_against_full = true;
  IncrementalEngine engine(opts);
  engine.observe(g);
  engine.observe(community_spec().build(1));  // same topology and stats
  const auto& r = engine.last();
  EXPECT_FALSE(r.full_recompute);
  EXPECT_TRUE(r.labels_reused);
  EXPECT_EQ(r.dirty_nodes, 0u);
  EXPECT_TRUE(r.verified) << r.verify_error;
}

// --- bounded-divergence modes -----------------------------------------------

TEST(IncrementalEngine, RefineStaysWithinEpsilon) {
  const auto windows = low_churn_windows(8);
  IncrementalOptions opts;
  opts.refine = true;
  opts.refine_epsilon = 0.05;
  opts.verify_against_full = true;
  IncrementalEngine engine(opts);
  for (std::size_t i = 0; i < windows.size(); ++i) {
    engine.observe(windows[i]);
    EXPECT_TRUE(engine.last().verified)
        << "window " << i << ": " << engine.last().verify_error;
    EXPECT_EQ(engine.last().segmentation.labels.size(),
              windows[i].node_count());
  }
}

TEST(IncrementalEngine, PcaTracksWithBoundedDivergence) {
  const auto windows = low_churn_windows(8);
  IncrementalOptions opts;
  opts.track_pca = true;
  opts.verify_against_full = true;
  // Default rank 25 on these 40-node windows leaves no room for the
  // subspace path (rank + 2·dirty ≥ n triggers the dimension fallback),
  // and the byte drift dirties ~1/3 of the rows — over the default 25%
  // budget. A production-shaped rank≪n plus a budget matching the
  // sequence's churn exercises the actual rank-k update.
  opts.pca.rank = 6;
  opts.pca.dirty_budget = 0.6;
  IncrementalEngine engine(opts);
  std::size_t subspace_updates = 0;
  for (std::size_t i = 0; i < windows.size(); ++i) {
    engine.observe(windows[i]);
    const auto& r = engine.last();
    EXPECT_TRUE(r.verified) << "window " << i << ": " << r.verify_error;
    if (i == 0) EXPECT_EQ(r.pca.full_reason, "first");
    if (!r.pca.full_recompute) ++subspace_updates;
  }
  EXPECT_GT(subspace_updates, 0u)
      << "the rank-k update path never ran — always full Jacobi";
}

TEST(IncrementalPca, FallbackReasons) {
  const auto windows = low_churn_windows(4);
  {
    incremental::IncrementalPcaOptions popts;
    popts.rank = 4;
    popts.dirty_budget = 1e-9;  // any dirty row busts the budget
    incremental::IncrementalPca pca(popts);
    pca.observe(windows[0], {});
    EXPECT_EQ(pca.last().full_reason, "first");
    const std::vector<NodeKey> dirty = {windows[1].key(0), windows[1].key(1)};
    pca.observe(windows[1], dirty);
    EXPECT_TRUE(pca.last().full_recompute);
    EXPECT_EQ(pca.last().full_reason, "budget");
  }
  {
    incremental::IncrementalPcaOptions popts;
    popts.rank = 4;
    popts.refresh_interval = 2;
    incremental::IncrementalPca pca(popts);
    pca.observe(windows[0], {});
    const std::vector<NodeKey> one = {windows[1].key(0)};
    pca.observe(windows[1], one);
    pca.observe(windows[2], one);
    EXPECT_TRUE(pca.last().full_recompute);
    EXPECT_EQ(pca.last().full_reason, "refresh");
  }
}

// --- CSR maintenance --------------------------------------------------------

TEST(IncrementalEngine, CsrMatchesFreshBuildEveryWindow) {
  const auto windows = low_churn_windows(8);
  IncrementalEngine engine;
  bool saw_in_place_patch = false;
  for (std::size_t i = 0; i < windows.size(); ++i) {
    engine.observe(windows[i]);
    saw_in_place_patch |= engine.last().csr_patched_in_place;
    const CsrAdjacency fresh(windows[i]);
    const CsrAdjacency& kept = engine.csr();
    ASSERT_EQ(kept.node_count(), fresh.node_count()) << "window " << i;
    for (NodeId v = 0; v < static_cast<NodeId>(fresh.node_count()); ++v) {
      ASSERT_EQ(kept.degree(v), fresh.degree(v)) << i << ":" << v;
      const auto deg = fresh.degree(v);
      EXPECT_EQ(std::memcmp(kept.ids(v).data(), fresh.ids(v).data(),
                            deg * sizeof(std::uint32_t)), 0);
      EXPECT_EQ(std::memcmp(kept.tags(v).data(), fresh.tags(v).data(),
                            deg * sizeof(std::int32_t)), 0);
      EXPECT_EQ(std::memcmp(kept.ports(v).data(), fresh.ports(v).data(),
                            deg * sizeof(std::int32_t)), 0);
      EXPECT_EQ(std::memcmp(kept.weights(v).data(), fresh.weights(v).data(),
                            deg * sizeof(double)), 0);
    }
  }
  EXPECT_TRUE(saw_in_place_patch)
      << "no byte-only window took the patch_rows path";
}

// --- instrumentation --------------------------------------------------------

TEST(IncrementalEngine, CountersAdvance) {
  obs::Registry& registry = obs::Registry::global();
  const std::uint64_t windows0 = registry.counter("ccg.incr.windows").value();
  const std::uint64_t full0 =
      registry.counter("ccg.incr.full_recomputes").value();
  const std::uint64_t dirty0 = registry.counter("ccg.incr.dirty_nodes").value();

  const auto windows = low_churn_windows(4);
  IncrementalEngine engine;
  for (const CommGraph& w : windows) engine.observe(w);

  EXPECT_EQ(registry.counter("ccg.incr.windows").value(),
            windows0 + windows.size());
  EXPECT_GE(registry.counter("ccg.incr.full_recomputes").value(), full0 + 1)
      << "the first window is always a full recompute";
  EXPECT_GT(registry.counter("ccg.incr.dirty_nodes").value(), dirty0);
}

// --- patch-stream input -----------------------------------------------------

TEST(IncrementalEngine, CallerSuppliedPatchesMatchSelfComputed) {
  const auto windows = low_churn_windows(6);
  IncrementalOptions opts;
  opts.verify_against_full = true;
  IncrementalEngine self;
  IncrementalEngine fed(opts);
  CommGraph prev;
  for (std::size_t i = 0; i < windows.size(); ++i) {
    self.observe(windows[i]);
    fed.observe(windows[i], make_patch(prev, windows[i]));
    EXPECT_TRUE(fed.last().verified) << fed.last().verify_error;
    EXPECT_EQ(self.last().segmentation.labels, fed.last().segmentation.labels)
        << "window " << i;
    prev = windows[i];
  }
}

}  // namespace
}  // namespace ccg

#include "ccg/common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "ccg/common/expect.hpp"

namespace ccg {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
  EXPECT_THROW(rng.uniform(0), ContractViolation);
}

TEST(Rng, UniformIsRoughlyUnbiased) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, kDraws / 10 * 0.1);
  }
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(9);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_FALSE(rng.chance(-1.0));
  EXPECT_TRUE(rng.chance(1.0));
  EXPECT_TRUE(rng.chance(2.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.25);
  EXPECT_NEAR(hits, 2500, 200);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(13);
  double sum = 0.0, sum2 = 0.0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / kDraws;
  const double var = sum2 / kDraws - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, LognormalMedianIsExpMu) {
  Rng rng(17);
  std::vector<double> draws;
  for (int i = 0; i < 20001; ++i) draws.push_back(rng.lognormal(3.0, 1.0));
  std::nth_element(draws.begin(), draws.begin() + 10000, draws.end());
  EXPECT_NEAR(draws[10000], std::exp(3.0), std::exp(3.0) * 0.1);
}

TEST(Rng, ParetoRespectsScaleAndTail) {
  Rng rng(19);
  double min_seen = 1e18;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.pareto(2.0, 1.5);
    EXPECT_GE(x, 2.0);
    min_seen = std::min(min_seen, x);
  }
  EXPECT_LT(min_seen, 2.1);  // infimum is the scale parameter
  EXPECT_THROW(rng.pareto(0.0, 1.0), ContractViolation);
  EXPECT_THROW(rng.pareto(1.0, 0.0), ContractViolation);
}

TEST(Rng, PoissonMeanMatchesSmallAndLarge) {
  Rng rng(23);
  for (const double mean : {0.1, 3.0, 40.0, 200.0}) {
    double sum = 0.0;
    constexpr int kDraws = 20000;
    for (int i = 0; i < kDraws; ++i) sum += static_cast<double>(rng.poisson(mean));
    EXPECT_NEAR(sum / kDraws, mean, std::max(0.05, mean * 0.05)) << "mean " << mean;
  }
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, ForkYieldsIndependentStream) {
  Rng parent(29);
  Rng child = parent.fork();
  // The child must not replay the parent's stream.
  Rng parent2(29);
  parent2.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next() == parent.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(ZipfSampler, UniformWhenExponentZero) {
  ZipfSampler zipf(4, 0.0);
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_NEAR(zipf.pmf(r), 0.25, 1e-9);
  }
}

TEST(ZipfSampler, SkewsTowardLowRanks) {
  ZipfSampler zipf(100, 1.2);
  EXPECT_GT(zipf.pmf(0), zipf.pmf(1));
  EXPECT_GT(zipf.pmf(1), zipf.pmf(10));
  EXPECT_GT(zipf.pmf(10), zipf.pmf(99));

  Rng rng(31);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[50] * 5);
}

TEST(ZipfSampler, SamplesMatchPmf) {
  ZipfSampler zipf(10, 1.0);
  Rng rng(37);
  std::vector<int> counts(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t r = 0; r < 10; ++r) {
    EXPECT_NEAR(static_cast<double>(counts[r]) / kDraws, zipf.pmf(r),
                0.01 + zipf.pmf(r) * 0.1);
  }
}

TEST(ZipfSampler, RejectsEmptyDomain) {
  EXPECT_THROW(ZipfSampler(0, 1.0), ContractViolation);
}

}  // namespace
}  // namespace ccg

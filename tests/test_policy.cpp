#include "ccg/policy/reachability.hpp"

#include <gtest/gtest.h>

#include "ccg/common/expect.hpp"

namespace ccg {
namespace {

const IpAddr kWeb1(0x0A000001), kWeb2(0x0A000002), kApi(0x0A000011),
    kDb(0x0A000021), kExt(0x64000001);

SegmentMap three_segments() {
  SegmentMap map;
  map.assign(kWeb1, 0);
  map.assign(kWeb2, 0);
  map.assign(kApi, 1);
  map.assign(kDb, 2);
  return map;
}

ConnectionSummary record(IpAddr local, std::uint16_t lport, IpAddr remote,
                         std::uint16_t rport, std::int64_t minute = 0) {
  return ConnectionSummary{
      .time = MinuteBucket(minute),
      .flow = FlowKey{.local_ip = local, .local_port = lport,
                      .remote_ip = remote, .remote_port = rport,
                      .protocol = Protocol::kTcp},
      .counters = TrafficCounters{.packets_sent = 2, .packets_rcvd = 2,
                                  .bytes_sent = 512, .bytes_rcvd = 2048}};
}

TEST(ClassifyEndpoints, EphemeralHeuristic) {
  // Client-side record: local ephemeral, remote service.
  const auto ep1 = classify_endpoints(
      FlowKey{.local_ip = kWeb1, .local_port = 40000, .remote_ip = kApi,
              .remote_port = 8080});
  EXPECT_EQ(ep1.client_ip, kWeb1);
  EXPECT_EQ(ep1.server_ip, kApi);
  EXPECT_EQ(ep1.server_port, 8080);

  // Server-side record of the same flow.
  const auto ep2 = classify_endpoints(
      FlowKey{.local_ip = kApi, .local_port = 8080, .remote_ip = kWeb1,
              .remote_port = 40000});
  EXPECT_EQ(ep2.client_ip, kWeb1);
  EXPECT_EQ(ep2.server_ip, kApi);
  EXPECT_EQ(ep2.server_port, 8080);
}

TEST(ClassifyEndpoints, InitiatorBitBeatsPortHeuristic) {
  // gRPC-style service port inside the ephemeral range: the heuristic is
  // helpless on the server-side record, the initiator bit is not.
  ConnectionSummary rec = record(kApi, 50051, kWeb1, 41000);
  rec.initiator = Initiator::kRemote;  // remote (web) opened the connection
  const auto ep = classify_endpoints(rec);
  EXPECT_EQ(ep.client_ip, kWeb1);
  EXPECT_EQ(ep.server_ip, kApi);
  EXPECT_EQ(ep.server_port, 50051);

  // Same flow, client-side record.
  ConnectionSummary client_rec = record(kWeb1, 41000, kApi, 50051);
  client_rec.initiator = Initiator::kLocal;
  const auto ep2 = classify_endpoints(client_rec);
  EXPECT_EQ(ep2.client_ip, kWeb1);
  EXPECT_EQ(ep2.server_port, 50051);

  // Unknown initiator falls back to the (here: wrong) heuristic.
  const auto ep3 = classify_endpoints(record(kApi, 50051, kWeb1, 41000));
  EXPECT_EQ(ep3.server_port, 41000);
}

TEST(ClassifyEndpoints, BothPortsLowPicksLower) {
  const auto ep = classify_endpoints(
      FlowKey{.local_ip = kWeb1, .local_port = 5432, .remote_ip = kApi,
              .remote_port = 8080});
  EXPECT_EQ(ep.server_ip, kWeb1);
  EXPECT_EQ(ep.server_port, 5432);
}

TEST(PolicyMiner, LearnsSegmentRulesFromBothSides) {
  const SegmentMap segments = three_segments();
  PolicyMiner miner(segments);
  miner.observe(record(kWeb1, 40000, kApi, 8080));
  miner.observe(record(kApi, 8080, kWeb1, 40000));  // mirrored report
  const auto policy = miner.build();
  // Both records describe the same channel -> one rule.
  EXPECT_EQ(policy.rule_count(), 1u);
  EXPECT_TRUE(policy.allows({.from_segment = 0, .to_segment = 1, .server_port = 8080}));
  EXPECT_FALSE(policy.allows({.from_segment = 1, .to_segment = 0, .server_port = 8080}));
  EXPECT_FALSE(policy.allows({.from_segment = 0, .to_segment = 1, .server_port = 9090}));
}

TEST(PolicyMiner, ExternalPeersMapToExternalSegment) {
  const SegmentMap segments = three_segments();
  PolicyMiner miner(segments);
  miner.observe(record(kWeb1, 443, kExt, 51234));  // internet client hits web:443
  const auto policy = miner.build();
  EXPECT_TRUE(policy.allows(
      {.from_segment = kExternalSegment, .to_segment = 0, .server_port = 443}));
}

TEST(PolicyMiner, SupportCountingFiltersOneOffChannels) {
  const SegmentMap segments = three_segments();
  PolicyMiner miner(segments);
  // Window 1: the steady channel plus a one-off (attacker inside the
  // baseline, or a rare batch job).
  miner.observe(record(kWeb1, 40000, kApi, 8080));
  miner.observe(record(kWeb1, 41000, kDb, 5432));  // one-off
  miner.end_window();
  // Windows 2 and 3: only the steady channel.
  miner.observe(record(kWeb2, 40000, kApi, 8080, 60));
  miner.end_window();
  miner.observe(record(kWeb1, 42000, kApi, 8080, 120));
  miner.end_window();

  EXPECT_EQ(miner.windows_observed(), 3u);
  const auto permissive = miner.build(1);
  EXPECT_EQ(permissive.rule_count(), 2u);
  const auto strict = miner.build(2);
  EXPECT_EQ(strict.rule_count(), 1u);
  EXPECT_TRUE(strict.allows({.from_segment = 0, .to_segment = 1, .server_port = 8080}));
  EXPECT_FALSE(strict.allows({.from_segment = 0, .to_segment = 2, .server_port = 5432}));
  EXPECT_THROW(miner.build(0), ContractViolation);
}

TEST(PolicyMiner, RepeatsWithinOneWindowCountOnce) {
  const SegmentMap segments = three_segments();
  PolicyMiner miner(segments);
  for (int i = 0; i < 50; ++i) {
    miner.observe(record(kWeb1, 40000, kApi, 8080, i));
  }
  miner.end_window();
  EXPECT_EQ(miner.build(2).rule_count(), 0u);  // one window, not two
  EXPECT_EQ(miner.build(1).rule_count(), 1u);
}

TEST(PolicyChecker, FlagsUnmindedChannels) {
  const SegmentMap segments = three_segments();
  PolicyMiner miner(segments);
  miner.observe(record(kWeb1, 40000, kApi, 8080));
  PolicyChecker checker(segments, miner.build());

  // Allowed: same channel from the other web instance (same segment).
  EXPECT_FALSE(checker.check(record(kWeb2, 41000, kApi, 8080)).has_value());
  // Violation: web talking straight to the db.
  const auto v = checker.check(record(kWeb1, 42000, kDb, 5432));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->client_segment, 0u);
  EXPECT_EQ(v->server_segment, 2u);
  EXPECT_EQ(v->server_port, 5432);
  EXPECT_EQ(v->client_ip, kWeb1);
  EXPECT_EQ(checker.violations().size(), 1u);
}

TEST(PolicyChecker, DeduplicatesWithinWindow) {
  const SegmentMap segments = three_segments();
  PolicyChecker checker(segments, ReachabilityPolicy{});
  for (int minute = 0; minute < 5; ++minute) {
    checker.check(record(kWeb1, 42000, kDb, 5432, minute));
  }
  EXPECT_EQ(checker.violations().size(), 1u);
  checker.reset_window();
  checker.check(record(kWeb1, 42000, kDb, 5432, 60));
  EXPECT_EQ(checker.violations().size(), 2u);
}

TEST(PolicyChecker, TakeViolationsDrains) {
  const SegmentMap segments = three_segments();
  PolicyChecker checker(segments, ReachabilityPolicy{});
  checker.check(record(kWeb1, 42000, kDb, 5432));
  EXPECT_EQ(checker.take_violations().size(), 1u);
  EXPECT_TRUE(checker.violations().empty());
}

TEST(ReachabilityPolicy, ReachableSegmentsIgnoresExternal) {
  ReachabilityPolicy policy;
  policy.allow({.from_segment = 0, .to_segment = 1, .server_port = 80});
  policy.allow({.from_segment = 0, .to_segment = 1, .server_port = 443});  // same pair
  policy.allow({.from_segment = 1, .to_segment = 2, .server_port = 5432});
  policy.allow({.from_segment = kExternalSegment, .to_segment = 0, .server_port = 443});
  policy.allow({.from_segment = 2, .to_segment = kExternalSegment, .server_port = 443});

  const auto adj = policy.reachable_segments(3);
  ASSERT_EQ(adj.size(), 3u);
  EXPECT_EQ(adj[0], std::vector<std::uint32_t>{1});  // deduplicated pair
  EXPECT_EQ(adj[1], std::vector<std::uint32_t>{2});
  EXPECT_TRUE(adj[2].empty());
}

TEST(SegmentMap, FromRolesAndLookups) {
  std::unordered_map<IpAddr, std::string> roles{
      {kWeb1, "web"}, {kWeb2, "web"}, {kApi, "api"}};
  const auto map = SegmentMap::from_roles(roles);
  EXPECT_EQ(map.segment_count(), 2u);
  EXPECT_EQ(map.member_count(), 3u);
  EXPECT_EQ(map.segment_of(kWeb1), map.segment_of(kWeb2));
  EXPECT_NE(map.segment_of(kWeb1), map.segment_of(kApi));
  EXPECT_EQ(map.segment_of(kExt), kUnsegmented);
  EXPECT_EQ(map.segment_size(map.segment_of(kWeb1)), 2u);

  const auto members = map.members();
  std::size_t total = 0;
  for (const auto& m : members) total += m.size();
  EXPECT_EQ(total, 3u);
}

}  // namespace
}  // namespace ccg

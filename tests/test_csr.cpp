// CsrAdjacency: round-trip against the map-based CommGraph, golden
// neighbor order, orientation canonicalization, collapsed-node rows, and
// arena alignment/lifetime (the latter meant to run under ASan in CI).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "ccg/common/rng.hpp"
#include "ccg/graph/comm_graph.hpp"
#include "ccg/graph/csr.hpp"

namespace ccg {
namespace {

std::int32_t expected_tag(const CommGraph& g, NodeId owner, EdgeId e) {
  switch (g.edge_role(owner, e)) {
    case CommGraph::EdgeRole::kInitiator: return CsrAdjacency::kTagInitiator;
    case CommGraph::EdgeRole::kResponder: return CsrAdjacency::kTagResponder;
    case CommGraph::EdgeRole::kMixed: return CsrAdjacency::kTagMixed;
  }
  return CsrAdjacency::kTagMixed;
}

/// Seeded random multi-edge graph with direction and port diversity.
CommGraph random_graph(std::size_t nodes, std::size_t edges, std::uint64_t seed) {
  CommGraph g;
  Rng rng(seed);
  for (std::size_t i = 0; i < nodes; ++i) {
    g.add_node(NodeKey::for_ip(IpAddr(static_cast<std::uint32_t>(i + 1))));
  }
  for (std::size_t e = 0; e < edges; ++e) {
    const auto a = static_cast<NodeId>(rng.uniform(nodes));
    const auto b = static_cast<NodeId>(rng.uniform(nodes));
    if (a == b) continue;
    g.add_edge_volume(a, b, 100 + rng.uniform(100000), rng.uniform(5000), 4, 2,
                      3, 2, /*client_ab=*/rng.uniform(10),
                      /*client_ba=*/rng.uniform(10),
                      /*port=*/rng.chance(0.7)
                          ? static_cast<std::int32_t>(rng.uniform(1024))
                          : -1);
  }
  return g;
}

TEST(CsrAdjacency, RoundTripMatchesMapBasedGraph) {
  const CommGraph g = random_graph(60, 400, 19);
  const CsrAdjacency csr(g);

  ASSERT_EQ(csr.node_count(), g.node_count());
  std::size_t total = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) total += g.degree(v);
  ASSERT_EQ(csr.edge_entry_count(), total);

  for (NodeId v = 0; v < g.node_count(); ++v) {
    ASSERT_EQ(csr.degree(v), g.degree(v)) << "node " << v;
    // Expected row: every incident edge, sorted by neighbor id — the same
    // canonical order regardless of insertion order.
    struct Entry {
      std::uint32_t id;
      std::int32_t tag;
      std::int32_t port;
      double weight;
    };
    std::vector<Entry> expect;
    for (const auto& [nbr, eid] : g.neighbors(v)) {
      expect.push_back({nbr, expected_tag(g, v, eid),
                        g.edge(eid).stats.server_port_hint,
                        std::log1p(static_cast<double>(g.edge(eid).stats.bytes()))});
    }
    std::sort(expect.begin(), expect.end(),
              [](const Entry& a, const Entry& b) { return a.id < b.id; });

    const auto ids = csr.ids(v);
    const auto tags = csr.tags(v);
    const auto ports = csr.ports(v);
    const auto weights = csr.weights(v);
    ASSERT_TRUE(std::is_sorted(ids.begin(), ids.end())) << "node " << v;
    for (std::size_t k = 0; k < expect.size(); ++k) {
      ASSERT_EQ(ids[k], expect[k].id) << "node " << v << " entry " << k;
      ASSERT_EQ(tags[k], expect[k].tag) << "node " << v << " entry " << k;
      ASSERT_EQ(ports[k], expect[k].port) << "node " << v << " entry " << k;
      ASSERT_EQ(weights[k], expect[k].weight) << "node " << v << " entry " << k;
    }
  }
}

TEST(CsrAdjacency, GoldenNeighborOrder) {
  CommGraph g;
  const NodeId n0 = g.add_node(NodeKey::for_ip(IpAddr(10u)));
  const NodeId n1 = g.add_node(NodeKey::for_ip(IpAddr(11u)));
  const NodeId n2 = g.add_node(NodeKey::for_ip(IpAddr(12u)));
  const NodeId n3 = g.add_node(NodeKey::for_ip(IpAddr(13u)));
  // Insert n0's edges in descending-neighbor order; the CSR row must come
  // out ascending anyway (the order is a function of the graph, not of the
  // insertion sequence).
  g.add_edge_volume(n0, n3, 800, 0, 1, 0, 1, 1, /*client_ab=*/5, 0, 443);
  g.add_edge_volume(n0, n2, 400, 0, 1, 0, 1, 1, /*client_ab=*/0, /*client_ba=*/5, 80);
  g.add_edge_volume(n0, n1, 200, 0, 1, 0, 1, 1, 0, 0, -1);

  const CsrAdjacency csr(g);
  ASSERT_EQ(csr.degree(n0), 3u);
  EXPECT_EQ(std::vector<std::uint32_t>(csr.ids(n0).begin(), csr.ids(n0).end()),
            (std::vector<std::uint32_t>{n1, n2, n3}));
  EXPECT_EQ(std::vector<std::int32_t>(csr.tags(n0).begin(), csr.tags(n0).end()),
            (std::vector<std::int32_t>{CsrAdjacency::kTagMixed,
                                       CsrAdjacency::kTagResponder,
                                       CsrAdjacency::kTagInitiator}));
  EXPECT_EQ(std::vector<std::int32_t>(csr.ports(n0).begin(), csr.ports(n0).end()),
            (std::vector<std::int32_t>{-1, 80, 443}));
  EXPECT_EQ(csr.weights(n0)[0], std::log1p(200.0));
  EXPECT_EQ(csr.weights(n0)[1], std::log1p(400.0));
  EXPECT_EQ(csr.weights(n0)[2], std::log1p(800.0));
  // The far ends see the mirrored tags.
  EXPECT_EQ(csr.tags(n3)[0], CsrAdjacency::kTagResponder);
  EXPECT_EQ(csr.tags(n2)[0], CsrAdjacency::kTagInitiator);
}

/// CommGraph canonicalizes edge orientation (a < b, *_ab swapped to match);
/// the CSR built from either insertion orientation must be identical down
/// to the last tag and weight bit.
TEST(CsrAdjacency, OrientationCanonicalizationInvariance) {
  const auto build = [](bool reversed) {
    CommGraph g;
    const NodeId a = g.add_node(NodeKey::for_ip(IpAddr(1u)));
    const NodeId b = g.add_node(NodeKey::for_ip(IpAddr(2u)));
    const NodeId c = g.add_node(NodeKey::for_ip(IpAddr(3u)));
    if (reversed) {
      g.add_edge_volume(b, a, 10, 1000, 1, 4, 3, 2, /*client_ab=*/0,
                        /*client_ba=*/9, 443);
      g.add_edge_volume(c, b, 50, 700, 2, 3, 2, 2, /*client_ab=*/8,
                        /*client_ba=*/1, 8080);
    } else {
      g.add_edge_volume(a, b, 1000, 10, 4, 1, 3, 2, /*client_ab=*/9,
                        /*client_ba=*/0, 443);
      g.add_edge_volume(b, c, 700, 50, 3, 2, 2, 2, /*client_ab=*/1,
                        /*client_ba=*/8, 8080);
    }
    return g;
  };
  const CommGraph fwd = build(false);
  const CommGraph rev = build(true);
  const CsrAdjacency csr_fwd(fwd);
  const CsrAdjacency csr_rev(rev);

  ASSERT_EQ(csr_fwd.edge_entry_count(), csr_rev.edge_entry_count());
  for (NodeId v = 0; v < csr_fwd.node_count(); ++v) {
    for (std::size_t k = 0; k < csr_fwd.degree(v); ++k) {
      ASSERT_EQ(csr_fwd.ids(v)[k], csr_rev.ids(v)[k]);
      ASSERT_EQ(csr_fwd.tags(v)[k], csr_rev.tags(v)[k]);
      ASSERT_EQ(csr_fwd.ports(v)[k], csr_rev.ports(v)[k]);
      ASSERT_EQ(csr_fwd.weights(v)[k], csr_rev.weights(v)[k]);
    }
  }
  // Direction survives canonicalization: node 0 initiated 9-of-9 flow
  // minutes on its edge, so its tag is initiator either way; node 2 holds
  // 8-of-9 client minutes on the b-c edge, so it is an initiator too.
  EXPECT_EQ(csr_fwd.tags(0)[0], CsrAdjacency::kTagInitiator);
  EXPECT_EQ(csr_rev.tags(0)[0], CsrAdjacency::kTagInitiator);
  EXPECT_EQ(csr_fwd.tags(2)[0], CsrAdjacency::kTagInitiator);
  EXPECT_EQ(csr_fwd.tags(1)[0], CsrAdjacency::kTagResponder);
}

TEST(CsrAdjacency, CollapsedNodeIsAnOrdinaryRow) {
  CommGraph g;
  const NodeId coll = g.add_node(NodeKey::collapsed());
  g.note_collapsed_members(coll, 17);
  const NodeId s1 = g.add_node(NodeKey::for_ip(IpAddr(5u)));
  const NodeId s2 = g.add_node(NodeKey::for_ip(IpAddr(6u)));
  g.add_edge_volume(s1, coll, 5000, 100, 3, 1, 2, 2, /*client_ab=*/6, 0, 53);
  g.add_edge_volume(s2, coll, 300, 10, 1, 1, 1, 1, 0, 0, -1);
  ASSERT_TRUE(g.key(coll).is_collapsed());

  const CsrAdjacency csr(g);
  ASSERT_EQ(csr.degree(coll), 2u);
  EXPECT_EQ(std::vector<std::uint32_t>(csr.ids(coll).begin(), csr.ids(coll).end()),
            (std::vector<std::uint32_t>{s1, s2}));
  // The collapse node is the responder of the DNS-ish edge s1 initiated.
  EXPECT_EQ(csr.tags(coll)[0], CsrAdjacency::kTagResponder);
  EXPECT_EQ(csr.ports(coll)[0], 53);
  EXPECT_EQ(csr.weights(coll)[0], std::log1p(5100.0));
  EXPECT_EQ(csr.tags(s1)[0], CsrAdjacency::kTagInitiator);
}

TEST(CsrAdjacency, ArenaAlignmentAndLifetime) {
  const CommGraph g = random_graph(40, 200, 23);
  CsrAdjacency csr(g);

  // Every column base sits on a 64-byte boundary inside one arena.
  const auto aligned = [](const void* p) {
    return reinterpret_cast<std::uintptr_t>(p) % 64 == 0;
  };
  EXPECT_TRUE(aligned(csr.offsets()));
  EXPECT_TRUE(aligned(csr.ids_base()));
  EXPECT_TRUE(aligned(csr.tags_base()));
  EXPECT_TRUE(aligned(csr.ports_base()));
  EXPECT_TRUE(aligned(csr.weights_base()));
  EXPECT_GT(csr.arena_bytes(), 0u);

  // Walk every entry through both the span accessors and the raw bases —
  // under ASan this proves the arena covers everything the accessors hand
  // out, with no over- or under-allocation.
  double span_sum = 0.0, raw_sum = 0.0;
  for (NodeId v = 0; v < csr.node_count(); ++v) {
    for (const double w : csr.weights(v)) span_sum += w;
  }
  for (std::size_t k = 0; k < csr.edge_entry_count(); ++k) {
    raw_sum += csr.weights_base()[k];
    (void)csr.ids_base()[k];
    (void)csr.tags_base()[k];
    (void)csr.ports_base()[k];
  }
  EXPECT_EQ(span_sum, raw_sum);

  // Moved-from construction keeps the arena alive in the destination.
  const CsrAdjacency moved = std::move(csr);
  double moved_sum = 0.0;
  for (NodeId v = 0; v < moved.node_count(); ++v) {
    for (const double w : moved.weights(v)) moved_sum += w;
  }
  EXPECT_EQ(moved_sum, span_sum);

  // Degenerate shapes allocate and free cleanly.
  const CommGraph empty;
  const CsrAdjacency csr_empty(empty);
  EXPECT_EQ(csr_empty.node_count(), 0u);
  EXPECT_EQ(csr_empty.edge_entry_count(), 0u);

  CommGraph isolated;
  isolated.add_node(NodeKey::for_ip(IpAddr(9u)));
  const CsrAdjacency csr_isolated(isolated);
  EXPECT_EQ(csr_isolated.node_count(), 1u);
  EXPECT_EQ(csr_isolated.degree(0), 0u);
  EXPECT_TRUE(csr_isolated.ids(0).empty());

  // Churn: repeated build/teardown of differently-shaped arenas.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const CommGraph gg = random_graph(10 + seed * 7, 30 + seed * 23, seed);
    const CsrAdjacency c(gg);
    std::size_t entries = 0;
    for (NodeId v = 0; v < c.node_count(); ++v) entries += c.ids(v).size();
    EXPECT_EQ(entries, c.edge_entry_count());
  }
}

}  // namespace
}  // namespace ccg

// Bit-identity of every simd primitive across backends, plus the tier
// dispatch/override semantics.
//
// The contract under test is the one src/simd documents: for every
// primitive and every input size (including ragged tails), a non-scalar
// backend returns results BYTE-identical to the scalar reference — the
// comparisons below are on std::uint64_t bit patterns, not tolerances.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "ccg/common/rng.hpp"
#include "ccg/obs/metrics.hpp"
#include "ccg/simd/simd.hpp"

namespace ccg {
namespace {

struct TierGuard {
  ~TierGuard() { simd::set_tier("auto"); }
};

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// Tiers this host can actually run: scalar always, plus the best
/// auto-dispatched tier when it differs (avx2 on an AVX2 x86-64 host,
/// neon on aarch64). On a scalar-only host the loop still runs — it just
/// compares scalar against itself, keeping the test portable.
std::vector<std::string> selectable_tiers() {
  simd::set_tier("auto");
  std::vector<std::string> tiers{"scalar"};
  const std::string best = simd::tier_name(simd::active_tier());
  if (best != "scalar") tiers.push_back(best);
  return tiers;
}

/// Runs `fn` (which returns the full result as a bit vector) once under the
/// scalar backend and once under every other selectable tier, and demands
/// exact equality.
template <typename Fn>
void expect_tier_identical(Fn&& fn, const std::string& what) {
  const std::vector<std::string> tiers = selectable_tiers();
  simd::set_tier("scalar");
  const std::vector<std::uint64_t> reference = fn();
  for (const std::string& tier : tiers) {
    simd::set_tier(tier);
    ASSERT_EQ(reference, fn()) << what << " diverged under tier=" << tier;
  }
}

// Sizes straddling the 4-lane geometry: empty, sub-width, exact multiples,
// every tail residue, and larger blocks crossing cache lines.
const std::size_t kSizes[] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 12, 15, 16, 17, 31, 33, 64, 100, 257};

TEST(SimdPrimitives, FpReductionsBitIdenticalAcrossTiers) {
  TierGuard guard;
  Rng rng(29);
  for (const std::size_t n : kSizes) {
    std::vector<double> a(n), b(n);
    for (auto& v : a) v = rng.normal();
    for (auto& v : b) v = rng.normal();
    expect_tier_identical(
        [&] {
          return std::vector<std::uint64_t>{
              bits(simd::dot(a.data(), b.data(), n)),
              bits(simd::squared_distance(a.data(), b.data(), n)),
              bits(simd::max_abs(a.data(), n))};
        },
        "dot/sqdist/max_abs n=" + std::to_string(n));
  }
}

TEST(SimdPrimitives, GatherReductionsBitIdenticalAcrossTiers) {
  TierGuard guard;
  Rng rng(31);
  constexpr std::size_t kBase = 64;
  std::vector<double> base(kBase);
  for (auto& v : base) v = rng.normal();
  for (const std::size_t n : kSizes) {
    std::vector<std::uint32_t> idx(n);
    std::vector<double> w(n);
    for (auto& i : idx) i = static_cast<std::uint32_t>(rng.uniform(kBase));
    for (auto& v : w) v = std::log1p(static_cast<double>(rng.uniform(100000)));
    const std::uint32_t present = n > 0 ? idx[n / 2] : 7u;
    expect_tier_identical(
        [&] {
          return std::vector<std::uint64_t>{
              bits(simd::gather_sum(base.data(), idx.data(), n)),
              bits(simd::gather_dot(base.data(), idx.data(), w.data(), n)),
              bits(simd::masked_sum(idx.data(), w.data(), n, present)),
              bits(simd::masked_sum(idx.data(), w.data(), n, simd::kNoExclude))};
        },
        "gather/masked n=" + std::to_string(n));
  }
}

TEST(SimdPrimitives, ElementwiseUpdatesBitIdenticalAcrossTiers) {
  TierGuard guard;
  Rng rng(37);
  const double c = std::cos(0.3), s = std::sin(0.3);
  for (const std::size_t n : kSizes) {
    std::vector<double> x0(n), y0(n), row0(n), vec(n);
    for (auto& v : x0) v = rng.normal();
    for (auto& v : y0) v = rng.normal();
    for (auto& v : row0) v = rng.normal();
    for (auto& v : vec) v = rng.normal();
    expect_tier_identical(
        [&] {
          std::vector<double> x = x0, y = y0, row = row0, row2 = row0;
          simd::rotate_pair(x.data(), y.data(), c, s, n);
          simd::rank1_update(row.data(), vec.data(), 0.75, n);
          const double abs_sum =
              simd::rank1_update_abs_sum(row2.data(), vec.data(), -1.25, n);
          std::vector<std::uint64_t> out{bits(abs_sum)};
          for (const auto& vecs : {x, y, row, row2}) {
            for (const double v : vecs) out.push_back(bits(v));
          }
          return out;
        },
        "rotate/rank1 n=" + std::to_string(n));
  }
}

TEST(SimdPrimitives, StampedCountsBitIdenticalAcrossTiers) {
  TierGuard guard;
  Rng rng(41);
  constexpr std::size_t kNodes = 64;
  constexpr std::uint32_t kVersion = 3;
  std::vector<std::uint32_t> stamp(kNodes);
  std::vector<std::int32_t> vtag(kNodes), vport(kNodes);
  std::vector<double> vweight(kNodes);
  for (std::size_t i = 0; i < kNodes; ++i) {
    stamp[i] = rng.chance(0.5) ? kVersion : 0u;
    vtag[i] = static_cast<std::int32_t>(rng.uniform(3));
    vport[i] = rng.chance(0.5) ? static_cast<std::int32_t>(rng.uniform(1024)) : -1;
    vweight[i] = std::log1p(static_cast<double>(rng.uniform(100000)));
  }
  for (const std::size_t n : kSizes) {
    std::vector<std::uint32_t> ids(n);
    std::vector<std::int32_t> tags(n), ports(n);
    std::vector<double> w(n);
    for (std::size_t i = 0; i < n; ++i) {
      ids[i] = static_cast<std::uint32_t>(rng.uniform(kNodes));
      // Half the entries share the stamped view's tag/port so the matched
      // branches actually fire; the rest diverge.
      tags[i] = rng.chance(0.5) ? vtag[ids[i]] : static_cast<std::int32_t>(rng.uniform(3));
      ports[i] = rng.chance(0.5) ? vport[ids[i]] : -1;
      w[i] = std::log1p(static_cast<double>(rng.uniform(100000)));
    }
    const std::uint32_t excluded = n > 0 ? ids[n / 3] : 5u;
    expect_tier_identical(
        [&] {
          std::vector<std::uint64_t> out;
          out.push_back(simd::count_stamped(ids.data(), n, stamp.data(), kVersion));
          for (const bool use_direction : {false, true}) {
            for (const std::uint32_t ex : {excluded, simd::kNoExclude}) {
              const simd::JaccardCounts jc = simd::jaccard_counts(
                  ids.data(), tags.data(), ports.data(), n, stamp.data(),
                  vtag.data(), vport.data(), kVersion, use_direction, ex);
              out.push_back(jc.inter);
              out.push_back(jc.deg_b);
            }
          }
          for (const std::uint32_t ex : {excluded, simd::kNoExclude}) {
            const simd::WeightedOverlap wo = simd::weighted_overlap(
                ids.data(), w.data(), n, stamp.data(), vweight.data(), kVersion, ex);
            for (const double v : {wo.sum_min, wo.sum_max_matched, wo.b_total,
                                   wo.matched_a, wo.matched_b}) {
              out.push_back(bits(v));
            }
          }
          return out;
        },
        "stamped counts n=" + std::to_string(n));
  }
}

TEST(SimdPrimitives, MinHashBitIdenticalAcrossTiers) {
  TierGuard guard;
  constexpr std::size_t kHashes = 96;
  std::uint64_t salts[kHashes];
  for (std::size_t h = 0; h < kHashes; ++h) {
    salts[h] = static_cast<std::uint64_t>(static_cast<std::uint32_t>(h * 0x9E3779B9u));
  }
  // Ragged signature lengths exercise the 4-wide tail handling too.
  for (const std::size_t k : {std::size_t{1}, std::size_t{3}, std::size_t{4},
                              std::size_t{7}, std::size_t{96}}) {
    expect_tier_identical(
        [&] {
          std::vector<std::uint64_t> sig(k, ~0ull);
          for (std::uint32_t f = 0; f < 100; ++f) {
            const std::uint64_t feature =
                (static_cast<std::uint64_t>(f) << 2 | (f % 3)) ^
                (static_cast<std::uint64_t>(f % 7 + 1) << 40);
            simd::minhash_update(feature << 8, salts, sig.data(), k);
          }
          return sig;
        },
        "minhash k=" + std::to_string(k));
  }
  // The shared finalizer is the identity at 0 and avalanche-mixes elsewhere.
  EXPECT_EQ(simd::mix64(0), 0u);
  EXPECT_NE(simd::mix64(1), 1u);
}

TEST(SimdDispatch, TierOverrideAndDegradation) {
  TierGuard guard;
  // Scalar is compiled in and selectable on every host.
  EXPECT_TRUE(simd::tier_available(simd::Tier::kScalar));
  EXPECT_TRUE(simd::set_tier("scalar"));
  EXPECT_EQ(simd::active_tier(), simd::Tier::kScalar);

  // Unknown names are rejected without changing the dispatch.
  EXPECT_FALSE(simd::set_tier("sse9"));
  EXPECT_FALSE(simd::set_tier(""));
  EXPECT_EQ(simd::active_tier(), simd::Tier::kScalar);

  // Requesting an unavailable tier degrades to the best available one:
  // whichever of these two the host lacks must still land on a tier that
  // is actually selectable.
  EXPECT_TRUE(simd::set_tier("avx2"));
  EXPECT_TRUE(simd::tier_available(simd::active_tier()));
  EXPECT_TRUE(simd::set_tier("neon"));
  EXPECT_TRUE(simd::tier_available(simd::active_tier()));

  // "auto" resolves to an available tier as well.
  EXPECT_TRUE(simd::set_tier("auto"));
  EXPECT_TRUE(simd::tier_available(simd::active_tier()));
}

TEST(SimdDispatch, CapabilityStringAndGauge) {
  TierGuard guard;
  simd::set_tier("auto");
  const std::string caps = simd::capability_string();
  EXPECT_NE(caps.find("compiled=scalar"), std::string::npos) << caps;
  EXPECT_NE(caps.find("dispatched="), std::string::npos) << caps;
  EXPECT_NE(caps.find(simd::tier_name(simd::active_tier())), std::string::npos)
      << caps;

  // The resolved tier is exported so flight records can say which tier ran.
  obs::Gauge& gauge = obs::Registry::global().gauge("ccg.simd.tier");
  EXPECT_EQ(gauge.value(),
            static_cast<double>(static_cast<int>(simd::active_tier())));
  simd::set_tier("scalar");
  EXPECT_EQ(gauge.value(), 0.0);
}

}  // namespace
}  // namespace ccg
